(* Tests for the prob substrate: Rng, Dist, Divergence, Stats, Dirichlet. *)

open Helpers

let test_rng_deterministic () =
  let a = Prob.Rng.create 7 and b = Prob.Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prob.Rng.bits64 a) (Prob.Rng.bits64 b)
  done

let test_rng_seeds_differ () =
  let a = Prob.Rng.create 1 and b = Prob.Rng.create 2 in
  Alcotest.(check bool) "different seeds diverge" false
    (Prob.Rng.bits64 a = Prob.Rng.bits64 b)

let test_rng_split_independent () =
  let a = Prob.Rng.create 7 in
  let b = Prob.Rng.split a in
  Alcotest.(check bool) "split diverges from parent" false
    (Prob.Rng.bits64 a = Prob.Rng.bits64 b)

let test_rng_copy () =
  let a = Prob.Rng.create 9 in
  ignore (Prob.Rng.bits64 a);
  let b = Prob.Rng.copy a in
  Alcotest.(check int64) "copy preserves state" (Prob.Rng.bits64 a)
    (Prob.Rng.bits64 b)

let test_rng_int_range () =
  let r = rng () in
  for _ = 1 to 10_000 do
    let v = Prob.Rng.int r 7 in
    if v < 0 || v >= 7 then Alcotest.failf "out of range: %d" v
  done

let test_rng_int_uniformity () =
  let r = rng () in
  let n = 60_000 and k = 6 in
  let counts = Array.make k 0 in
  for _ = 1 to n do
    let v = Prob.Rng.int r k in
    counts.(v) <- counts.(v) + 1
  done;
  (* Chi-square with 5 dof; 99.9th percentile ≈ 20.5. *)
  let expected = float_of_int n /. float_of_int k in
  let chi2 =
    Array.fold_left
      (fun acc c ->
        let d = float_of_int c -. expected in
        acc +. (d *. d /. expected))
      0. counts
  in
  if chi2 > 25. then Alcotest.failf "chi-square too large: %.2f" chi2

let test_rng_int_invalid () =
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Prob.Rng.int (rng ()) 0))

let test_rng_float_range () =
  let r = rng () in
  for _ = 1 to 10_000 do
    let v = Prob.Rng.float r in
    if v < 0. || v >= 1. then Alcotest.failf "float out of range: %f" v
  done

let test_rng_float_mean () =
  let r = rng () in
  let n = 50_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Prob.Rng.float r
  done;
  check_float ~eps:0.01 "mean of U(0,1)" 0.5 (!sum /. float_of_int n)

let test_shuffle_is_permutation () =
  let r = rng () in
  let a = Array.init 50 Fun.id in
  Prob.Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_sample_without_replacement () =
  let r = rng () in
  for _ = 1 to 100 do
    let k = 5 and n = 12 in
    let s = Prob.Rng.sample_without_replacement r k n in
    Alcotest.(check int) "size" k (List.length s);
    Alcotest.(check bool) "sorted distinct" true
      (List.sort_uniq Int.compare s = s);
    List.iter (fun i -> Alcotest.(check bool) "in range" true (i >= 0 && i < n)) s
  done

let test_sample_without_replacement_edge () =
  let r = rng () in
  Alcotest.(check (list int)) "k = n" [ 0; 1; 2 ]
    (Prob.Rng.sample_without_replacement r 3 3);
  Alcotest.(check (list int)) "k = 0" []
    (Prob.Rng.sample_without_replacement r 0 5)

let test_gamma_mean () =
  let r = rng () in
  let shape = 3.0 in
  let n = 20_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Prob.Rng.gamma r shape
  done;
  (* Gamma(3,1) has mean 3, sd ≈ 1.73; mean of 20k draws within ~0.05. *)
  check_float ~eps:0.1 "gamma mean" shape (!sum /. float_of_int n)

let test_gamma_small_shape () =
  let r = rng () in
  for _ = 1 to 1000 do
    let x = Prob.Rng.gamma r 0.3 in
    if x < 0. || not (Float.is_finite x) then
      Alcotest.failf "bad gamma draw: %f" x
  done

let test_exponential_mean () =
  let r = rng () in
  let n = 20_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Prob.Rng.exponential r 2.0
  done;
  check_float ~eps:0.02 "exp(2) mean" 0.5 (!sum /. float_of_int n)

(* Dist *)

let test_of_weights_normalizes () =
  let d = Prob.Dist.of_weights [| 1.; 3. |] in
  check_float "first" 0.25 (Prob.Dist.prob d 0);
  check_float "second" 0.75 (Prob.Dist.prob d 1)

let test_of_weights_rejects () =
  Alcotest.check_raises "empty"
    (Invalid_argument "Dist.of_weights: empty weight array") (fun () ->
      ignore (Prob.Dist.of_weights [||]));
  Alcotest.check_raises "all zero"
    (Invalid_argument "Dist.of_weights: all weights are zero") (fun () ->
      ignore (Prob.Dist.of_weights [| 0.; 0. |]));
  Alcotest.check_raises "negative"
    (Invalid_argument "Dist.of_weights: weights must be finite and non-negative")
    (fun () -> ignore (Prob.Dist.of_weights [| 1.; -1. |]))

let test_smooth_fills_missing_mass () =
  (* Partial mass 0.5 on the first of two values: the leftover 0.5 is
     split equally, giving [0.75; 0.25]. *)
  let d = Prob.Dist.smooth [| 0.5; 0. |] in
  check_float "first" 0.75 (Prob.Dist.prob d 0);
  check_float "second" 0.25 (Prob.Dist.prob d 1)

let test_smooth_positive_and_normal () =
  let d = Prob.Dist.smooth [| 1.; 0.; 0. |] in
  check_dist_positive "smooth positive" d;
  check_dist_sums_to_one "smooth sums to 1" d;
  Alcotest.(check bool) "floor applied" true
    (Prob.Dist.prob d 1 >= Prob.Dist.smoothing_floor /. 2.)

let test_smooth_all_zero_is_uniform () =
  let d = Prob.Dist.smooth [| 0.; 0.; 0.; 0. |] in
  Array.iter (fun p -> check_float "uniform" 0.25 p) (Prob.Dist.to_array d)

let test_uniform () =
  let d = Prob.Dist.uniform 5 in
  Array.iter (fun p -> check_float "uniform 5" 0.2 p) (Prob.Dist.to_array d)

let test_point_dist () =
  let d = Prob.Dist.point 4 2 in
  Alcotest.(check int) "mode" 2 (Prob.Dist.mode d);
  check_dist_positive "point positive" d;
  check_dist_sums_to_one "point sums" d

let test_sample_distribution () =
  let r = rng () in
  let d = Prob.Dist.of_weights [| 0.1; 0.2; 0.7 |] in
  let n = 30_000 in
  let counts = Array.make 3 0 in
  for _ = 1 to n do
    let v = Prob.Dist.sample r d in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      check_float ~eps:0.02 "sample frequency"
        (Prob.Dist.prob d i)
        (float_of_int c /. float_of_int n))
    counts

let test_mode_tie_break () =
  let d = Prob.Dist.of_weights [| 0.4; 0.4; 0.2 |] in
  Alcotest.(check int) "ties to smaller index" 0 (Prob.Dist.mode d)

let test_average () =
  let a = Prob.Dist.of_weights [| 1.; 0.; 1. |] in
  let b = Prob.Dist.of_weights [| 0.; 1.; 1. |] in
  let avg = Prob.Dist.average [ a; b ] in
  check_float "avg position 0" 0.25 (Prob.Dist.prob avg 0);
  check_float "avg position 1" 0.25 (Prob.Dist.prob avg 1);
  check_float "avg position 2" 0.5 (Prob.Dist.prob avg 2)

let test_weighted_average () =
  let a = Prob.Dist.of_weights [| 1.; 0. |] in
  let b = Prob.Dist.of_weights [| 0.; 1. |] in
  let w = Prob.Dist.weighted_average [ (3., a); (1., b) ] in
  check_float "weighted first" 0.75 (Prob.Dist.prob w 0);
  let zero = Prob.Dist.weighted_average [ (0., a); (0., b) ] in
  check_float "zero weights fall back to average" 0.5 (Prob.Dist.prob zero 0)

let test_average_size_mismatch () =
  let a = Prob.Dist.uniform 2 and b = Prob.Dist.uniform 3 in
  Alcotest.check_raises "size mismatch"
    (Invalid_argument "Dist.average: size mismatch") (fun () ->
      ignore (Prob.Dist.average [ a; b ]))

let test_entropy () =
  check_float "uniform 2 entropy" (log 2.)
    (Prob.Dist.entropy (Prob.Dist.uniform 2));
  let peaked = Prob.Dist.of_weights [| 1.; 0. |] in
  check_float "point entropy" 0. (Prob.Dist.entropy peaked)

(* Divergence *)

let test_kl_self_zero () =
  let d = Prob.Dist.of_weights [| 0.2; 0.3; 0.5 |] in
  check_float "KL(d,d)" 0. (Prob.Divergence.kl d d)

let test_kl_known_value () =
  let p = Prob.Dist.of_weights [| 0.5; 0.5 |] in
  let q = Prob.Dist.of_weights [| 0.25; 0.75 |] in
  let expected = (0.5 *. log (0.5 /. 0.25)) +. (0.5 *. log (0.5 /. 0.75)) in
  check_float "KL hand value" expected (Prob.Divergence.kl p q)

let test_kl_infinite_on_zero_support () =
  let p = Prob.Dist.of_weights [| 0.5; 0.5 |] in
  let q = Prob.Dist.of_weights [| 1.0; 0.0 |] in
  Alcotest.(check bool) "KL infinite" true
    (Prob.Divergence.kl p q = infinity)

let test_tv_bounds_and_value () =
  let p = Prob.Dist.of_weights [| 1.; 0. |] in
  let q = Prob.Dist.of_weights [| 0.; 1. |] in
  check_float "TV max" 1. (Prob.Divergence.total_variation p q);
  check_float "TV self" 0. (Prob.Divergence.total_variation p p)

let test_hellinger () =
  let p = Prob.Dist.of_weights [| 1.; 0. |] in
  let q = Prob.Dist.of_weights [| 0.; 1. |] in
  check_float "Hellinger max" 1. (Prob.Divergence.hellinger p q);
  check_float "Hellinger self" 0. (Prob.Divergence.hellinger p p)

let test_js_symmetric_bounded () =
  let p = Prob.Dist.of_weights [| 0.9; 0.1 |] in
  let q = Prob.Dist.of_weights [| 0.2; 0.8 |] in
  check_float "JS symmetric" (Prob.Divergence.jensen_shannon p q)
    (Prob.Divergence.jensen_shannon q p);
  Alcotest.(check bool) "JS bounded by log 2" true
    (Prob.Divergence.jensen_shannon p q <= log 2. +. 1e-9)

(* Regression: the previous implementation rebuilt the mixture through
   [Dist.of_weights], whose renormalization perturbed m = (p+q)/2 enough
   that js p p was a small positive number instead of 0. The divergence
   is now computed against the exact mixture. *)
let test_js_self_exactly_zero () =
  let dists =
    [
      Prob.Dist.uniform 4;
      Prob.Dist.of_weights [| 0.9; 0.1 |];
      Prob.Dist.of_weights [| 0.2; 0.3; 0.5 |];
      Prob.Dist.smooth [| 1.; 0.; 0.; 0.; 0. |];
      Prob.Dist.of_weights [| 1e-9; 1.0; 1e-12; 0.3 |];
    ]
  in
  List.iter
    (fun p ->
      Alcotest.(check (float 0.))
        "js p p is exactly 0" 0.
        (Prob.Divergence.jensen_shannon p p))
    dists

let test_js_range_adversarial () =
  let rng = Helpers.rng () in
  for _ = 1 to 200 do
    let n = 1 + Prob.Rng.int rng 6 in
    (* Adversarial weights: many near-zero entries, occasional spikes, so
       the mixture has components at very different scales. *)
    let weights () =
      Array.init n (fun _ ->
          match Prob.Rng.int rng 3 with
          | 0 -> 0.
          | 1 -> Prob.Rng.float rng *. 1e-9
          | _ -> Prob.Rng.float rng)
    in
    let wp = weights () and wq = weights () in
    if Array.exists (fun w -> w > 0.) wp && Array.exists (fun w -> w > 0.) wq
    then begin
      let p = Prob.Dist.of_weights wp and q = Prob.Dist.of_weights wq in
      let js = Prob.Divergence.jensen_shannon p q in
      Alcotest.(check bool) "0 <= js" true (js >= 0.);
      Alcotest.(check bool) "js <= ln 2" true (js <= log 2.)
    end
  done;
  (* Disjoint supports attain the upper bound exactly. *)
  let p = Prob.Dist.of_weights [| 1.; 0. |] in
  let q = Prob.Dist.of_weights [| 0.; 1. |] in
  check_float "js disjoint = ln 2" (log 2.)
    (Prob.Divergence.jensen_shannon p q)

let test_divergence_size_mismatch () =
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Divergence.kl: size mismatch") (fun () ->
      ignore (Prob.Divergence.kl (Prob.Dist.uniform 2) (Prob.Dist.uniform 3)))

(* Stats *)

let test_mean_var () =
  check_float "mean" 2. (Prob.Stats.mean [ 1.; 2.; 3. ]);
  check_float "variance" 1. (Prob.Stats.variance [ 1.; 2.; 3. ]);
  check_float "stddev" 1. (Prob.Stats.stddev [ 1.; 2.; 3. ]);
  check_float "empty mean" 0. (Prob.Stats.mean []);
  check_float "singleton variance" 0. (Prob.Stats.variance [ 5. ])

let test_median_percentile () =
  check_float "median odd" 2. (Prob.Stats.median [ 3.; 1.; 2. ]);
  check_float "median even" 2.5 (Prob.Stats.median [ 4.; 1.; 2.; 3. ]);
  check_float "p0" 1. (Prob.Stats.percentile 0. [ 3.; 1.; 2. ]);
  check_float "p100" 3. (Prob.Stats.percentile 100. [ 3.; 1.; 2. ]);
  Alcotest.check_raises "empty percentile"
    (Invalid_argument "Stats.percentile: empty list") (fun () ->
      ignore (Prob.Stats.percentile 50. []))

let test_linear_fit () =
  let slope, intercept =
    Prob.Stats.linear_fit [ (0., 1.); (1., 3.); (2., 5.) ]
  in
  check_float "slope" 2. slope;
  check_float "intercept" 1. intercept

let test_mean_ci95 () =
  let mean, half = Prob.Stats.mean_ci95 [ 1.; 2.; 3. ] in
  check_float "ci mean" 2. mean;
  Alcotest.(check bool) "halfwidth positive" true (half > 0.)

(* Dirichlet *)

let test_dirichlet_valid () =
  let r = rng () in
  for _ = 1 to 200 do
    let d = Prob.Dirichlet.sample r ~alpha:0.5 4 in
    check_dist_sums_to_one "dirichlet sums" d
  done

let test_dirichlet_mean () =
  let r = rng () in
  let n = 5000 in
  let acc = Array.make 3 0. in
  for _ = 1 to n do
    let d = Prob.Dirichlet.sample_asymmetric r [| 1.; 2.; 3. |] in
    Array.iteri (fun i _ -> acc.(i) <- acc.(i) +. Prob.Dist.prob d i) acc
  done;
  (* E[Dirichlet(1,2,3)] = (1/6, 2/6, 3/6). *)
  check_float ~eps:0.02 "mean 0" (1. /. 6.) (acc.(0) /. float_of_int n);
  check_float ~eps:0.02 "mean 1" (2. /. 6.) (acc.(1) /. float_of_int n);
  check_float ~eps:0.02 "mean 2" (3. /. 6.) (acc.(2) /. float_of_int n)

let test_dirichlet_rejects () =
  Alcotest.check_raises "non-positive alpha"
    (Invalid_argument "Dirichlet.sample_asymmetric: concentrations must be > 0")
    (fun () -> ignore (Prob.Dirichlet.sample (rng ()) ~alpha:0. 3))

(* Property-based tests *)

let dist_gen =
  QCheck2.Gen.(
    list_size (int_range 1 8) (float_range 0.0 10.0) >|= fun ws ->
    let arr = Array.of_list ws in
    if Array.for_all (fun w -> w <= 0.) arr then arr.(0) <- 1.;
    Prob.Dist.of_weights arr)

let prop_dist_normalized =
  qcheck "of_weights result sums to 1" dist_gen (fun d ->
      float_close ~eps:1e-9
        (Array.fold_left ( +. ) 0. (Prob.Dist.to_array d))
        1.0)

let prop_kl_nonneg =
  qcheck "KL is non-negative"
    QCheck2.Gen.(tup2 dist_gen dist_gen)
    (fun (p, q) ->
      Prob.Dist.size p <> Prob.Dist.size q
      || Prob.Divergence.kl p q >= -1e-12)

let prop_tv_bounded =
  qcheck "TV within [0,1]"
    QCheck2.Gen.(tup2 dist_gen dist_gen)
    (fun (p, q) ->
      Prob.Dist.size p <> Prob.Dist.size q
      ||
      let tv = Prob.Divergence.total_variation p q in
      tv >= -1e-12 && tv <= 1. +. 1e-12)

let prop_smooth_positive =
  qcheck "smooth yields positive distributions"
    QCheck2.Gen.(list_size (int_range 1 8) (float_range 0.0 1.0))
    (fun ws ->
      let arr = Array.of_list ws in
      let total = Array.fold_left ( +. ) 0. arr in
      let arr = if total > 1. then Array.map (fun w -> w /. total) arr else arr in
      let d = Prob.Dist.smooth arr in
      Array.for_all (fun p -> p > 0.) (Prob.Dist.to_array d))

let suite =
  [
    ("rng deterministic", `Quick, test_rng_deterministic);
    ("rng seeds differ", `Quick, test_rng_seeds_differ);
    ("rng split independent", `Quick, test_rng_split_independent);
    ("rng copy", `Quick, test_rng_copy);
    ("rng int range", `Quick, test_rng_int_range);
    ("rng int uniformity", `Quick, test_rng_int_uniformity);
    ("rng int invalid", `Quick, test_rng_int_invalid);
    ("rng float range", `Quick, test_rng_float_range);
    ("rng float mean", `Quick, test_rng_float_mean);
    ("shuffle permutation", `Quick, test_shuffle_is_permutation);
    ("sample without replacement", `Quick, test_sample_without_replacement);
    ("sample without replacement edges", `Quick,
     test_sample_without_replacement_edge);
    ("gamma mean", `Quick, test_gamma_mean);
    ("gamma small shape", `Quick, test_gamma_small_shape);
    ("exponential mean", `Quick, test_exponential_mean);
    ("of_weights normalizes", `Quick, test_of_weights_normalizes);
    ("of_weights rejects", `Quick, test_of_weights_rejects);
    ("smooth fills missing mass", `Quick, test_smooth_fills_missing_mass);
    ("smooth positive and normalized", `Quick, test_smooth_positive_and_normal);
    ("smooth of zeros is uniform", `Quick, test_smooth_all_zero_is_uniform);
    ("uniform", `Quick, test_uniform);
    ("point distribution", `Quick, test_point_dist);
    ("sample matches distribution", `Quick, test_sample_distribution);
    ("mode tie-break", `Quick, test_mode_tie_break);
    ("average", `Quick, test_average);
    ("weighted average", `Quick, test_weighted_average);
    ("average size mismatch", `Quick, test_average_size_mismatch);
    ("entropy", `Quick, test_entropy);
    ("KL self", `Quick, test_kl_self_zero);
    ("KL hand value", `Quick, test_kl_known_value);
    ("KL infinite on zero support", `Quick, test_kl_infinite_on_zero_support);
    ("TV bounds", `Quick, test_tv_bounds_and_value);
    ("Hellinger", `Quick, test_hellinger);
    ("JS symmetric/bounded", `Quick, test_js_symmetric_bounded);
    ("JS self is exactly zero", `Quick, test_js_self_exactly_zero);
    ("JS range adversarial", `Quick, test_js_range_adversarial);
    ("divergence size mismatch", `Quick, test_divergence_size_mismatch);
    ("mean/variance", `Quick, test_mean_var);
    ("median/percentile", `Quick, test_median_percentile);
    ("linear fit", `Quick, test_linear_fit);
    ("mean ci95", `Quick, test_mean_ci95);
    ("dirichlet valid", `Quick, test_dirichlet_valid);
    ("dirichlet mean", `Quick, test_dirichlet_mean);
    ("dirichlet rejects", `Quick, test_dirichlet_rejects);
    prop_dist_normalized;
    prop_kl_nonneg;
    prop_tv_bounded;
    prop_smooth_positive;
  ]
