(* Quality-observability suite (statistical quality PR).

   Covers the Quality monitor's calibration math (ECE/MCE bin edges,
   Brier decomposition sanity, the p = 0 / p = 1 endpoints), the
   deterministic shadow-cell selection, the drift detector, the
   degradation-rung provenance of Infer_single.explain, the
   epsilon-smoothed KL satellite, and the headline acceptance property:
   a quality-monitored multi-domain inference run is bit-identical to an
   unmonitored one. *)

module Q = Mrsl.Quality
module T = Mrsl.Telemetry

let dependent_model ?(n = 300) () =
  Mrsl.Model.learn_points
    ~params:{ Mrsl.Model.default_params with support_threshold = 0.01 }
    Helpers.dependent_schema
    (Helpers.dependent_points n)

let monitor ?(config = Q.default_config) () =
  (* Tests use private sinks so the global registry stays clean for the
     metrics suite's dynamic half. *)
  Q.create ~config ~telemetry:(T.create ()) ()

(* --- deterministic cell selection ------------------------------------ *)

let test_should_mask_deterministic () =
  let cfg = { Q.default_config with mask_fraction = 0.3; seed = 99 } in
  for row = 0 to 50 do
    for attr = 0 to 7 do
      let a = Q.should_mask cfg ~row ~attr in
      let b = Q.should_mask cfg ~row ~attr in
      Alcotest.(check bool) "same cell, same answer" a b
    done
  done;
  (* different seeds decorrelate the pattern *)
  let differs = ref false in
  for row = 0 to 200 do
    if
      Q.should_mask cfg ~row ~attr:0
      <> Q.should_mask { cfg with seed = 100 } ~row ~attr:0
    then differs := true
  done;
  Alcotest.(check bool) "seed changes the mask" true !differs

let test_should_mask_fraction () =
  let count frac =
    let cfg = { Q.default_config with mask_fraction = frac } in
    let c = ref 0 in
    for row = 0 to 999 do
      for attr = 0 to 3 do
        if Q.should_mask cfg ~row ~attr then incr c
      done
    done;
    !c
  in
  Alcotest.(check int) "fraction 0 masks nothing" 0 (count 0.);
  Alcotest.(check int) "fraction 1 masks everything" 4000 (count 1.);
  let observed = float_of_int (count 0.2) /. 4000. in
  Alcotest.(check bool)
    (Printf.sprintf "fraction 0.2 masks ~20%% (observed %.3f)" observed)
    true
    (Float.abs (observed -. 0.2) < 0.03)

(* --- sharpen (the injection hook) ------------------------------------ *)

let test_sharpen () =
  let d = Prob.Dist.of_weights [| 0.6; 0.3; 0.1 |] in
  let same = Q.sharpen d 1.0 in
  Alcotest.(check bool)
    "gamma 1 is the identity" true
    (Prob.Dist.to_array d = Prob.Dist.to_array same);
  let sharp = Q.sharpen d 4.0 in
  Helpers.check_dist_sums_to_one "sharpened renormalizes" sharp;
  Alcotest.(check bool)
    "gamma > 1 raises the top probability" true
    (Prob.Dist.prob sharp 0 > Prob.Dist.prob d 0);
  Alcotest.(check int) "mode unchanged" (Prob.Dist.mode d)
    (Prob.Dist.mode sharp)

(* --- calibration math ------------------------------------------------- *)

let test_ece_mce_hand_computed () =
  (* Two cells land in the [0.5, 1.0] bin of a 2-bin monitor with
     confidence 0.9: one hit, one miss. Bin accuracy 0.5, confidence 0.9
     -> gap 0.4 = ECE = MCE (the other bin is empty and contributes
     nothing). *)
  let m = monitor ~config:{ Q.default_config with bins = 2 } () in
  let d = Prob.Dist.of_weights [| 0.9; 0.1 |] in
  Q.score_cell m ~attr:0 ~truth:0 d;
  Q.score_cell m ~attr:0 ~truth:1 d;
  Helpers.check_float "ECE" 0.4 (Q.ece m);
  Helpers.check_float "MCE" 0.4 (Q.mce m);
  let bins = Q.reliability m in
  Alcotest.(check int) "2 bins" 2 (Array.length bins);
  Alcotest.(check int) "low bin empty" 0 bins.(0).Q.count;
  Alcotest.(check int) "high bin holds both" 2 bins.(1).Q.count;
  Helpers.check_float "bin confidence" 0.9 bins.(1).Q.confidence;
  Helpers.check_float "bin accuracy" 0.5 bins.(1).Q.accuracy

let test_empty_monitor_scores_zero () =
  let m = monitor () in
  let s = Q.scores m in
  Alcotest.(check int) "no cells" 0 s.Q.cells;
  Helpers.check_float "brier 0" 0. s.Q.brier;
  Helpers.check_float "ece 0" 0. (Q.ece m);
  Helpers.check_float "mce 0" 0. (Q.mce m)

let test_confidence_one_lands_in_last_bin () =
  (* A (smoothed) point mass has top-1 confidence ~1.0 — it must land in
     the last bin, not overflow past it. *)
  let m = monitor ~config:{ Q.default_config with bins = 10 } () in
  Q.score_cell m ~attr:0 ~truth:0 (Prob.Dist.point 3 0);
  let bins = Q.reliability m in
  Alcotest.(check int) "last bin count" 1 bins.(9).Q.count;
  Alcotest.(check bool)
    "last bin confidence ~1" true
    (bins.(9).Q.confidence > 0.999);
  Helpers.check_float "last bin accuracy" 1.0 bins.(9).Q.accuracy;
  Alcotest.(check bool)
    "near-calibrated point mass: tiny ECE" true
    (Q.ece m < 1e-3)

let test_endpoint_probabilities () =
  (* truth assigned (almost) no probability: Brier approaches its
     two-class maximum of 2 and the log loss stays finite rather than
     diverging. [Dist.point] keeps a 1e-5 floor on every entry, so the
     maximum is approached, not attained. *)
  let m = monitor () in
  Q.score_cell m ~attr:0 ~truth:1 (Prob.Dist.point 2 0);
  let s = Q.scores m in
  Alcotest.(check bool) "Brier near maximum" true (s.Q.brier > 1.999);
  Alcotest.(check bool) "log loss finite" true (Float.is_finite s.Q.log_loss);
  Helpers.check_float "top-1 accuracy 0" 0. s.Q.top1_accuracy

let test_brier_uniform_sanity () =
  (* A uniform prediction over k values scores 1 - 1/k regardless of the
     truth — the standard multiclass Brier identity. *)
  List.iter
    (fun k ->
      let m = monitor () in
      Q.score_cell m ~attr:0 ~truth:0 (Prob.Dist.uniform k);
      let s = Q.scores m in
      Helpers.check_float
        (Printf.sprintf "uniform-%d Brier" k)
        (1. -. (1. /. float_of_int k))
        s.Q.brier)
    [ 2; 3; 5 ]

let test_score_cell_validates_truth () =
  let m = monitor () in
  Alcotest.check_raises "truth outside support"
    (Invalid_argument "Quality.score_cell: truth outside the distribution")
    (fun () -> Q.score_cell m ~attr:0 ~truth:3 (Prob.Dist.uniform 3))

let test_create_validates_config () =
  let bad config = fun () -> ignore (Q.create ~config ~telemetry:(T.create ()) ()) in
  Alcotest.check_raises "mask_fraction > 1"
    (Invalid_argument "Quality.create: mask_fraction must be in [0, 1]")
    (bad { Q.default_config with mask_fraction = 1.5 });
  Alcotest.check_raises "bins < 1"
    (Invalid_argument "Quality.create: bins must be >= 1")
    (bad { Q.default_config with bins = 0 });
  Alcotest.check_raises "sharpen <= 0"
    (Invalid_argument "Quality.create: sharpen must be positive")
    (bad { Q.default_config with sharpen = 0. })

(* --- shadow evaluator -------------------------------------------------- *)

let eval_tuples n =
  Array.map Relation.Tuple.of_point (Helpers.dependent_points n)

let test_shadow_eval_deterministic () =
  let model = dependent_model () in
  let tuples = eval_tuples 120 in
  let report () =
    let reg = T.create () in
    let m = monitor () in
    let cells = Q.shadow_eval m model tuples in
    (cells, T.Json.to_string (Q.to_json ~registry:reg m))
  in
  let c1, j1 = report () in
  let c2, j2 = report () in
  Alcotest.(check int) "same cell count" c1 c2;
  Alcotest.(check bool) "cells scored" true (c1 > 0);
  Alcotest.(check string) "identical reports" j1 j2

let test_shadow_eval_side_effect_free () =
  let model = dependent_model () in
  let tuples = eval_tuples 60 in
  let before = Array.map Array.copy tuples in
  ignore (Q.shadow_eval (monitor ()) model tuples);
  Array.iteri
    (fun i t ->
      Alcotest.(check bool)
        (Printf.sprintf "tuple %d untouched" i)
        true
        (t = before.(i)))
    tuples

let test_shadow_eval_perfect_model_scores_well () =
  (* a1 = a0 is a hard functional dependency: masked a1 cells should be
     recovered with high confidence and accuracy. *)
  let model = dependent_model () in
  let m = monitor () in
  let cells = Q.shadow_eval m model (eval_tuples 200) in
  Alcotest.(check bool) "scored many cells" true (cells > 50);
  let s = Q.scores m in
  Alcotest.(check bool)
    (Printf.sprintf "top-1 accuracy %.3f > 0.6" s.Q.top1_accuracy)
    true (s.Q.top1_accuracy > 0.6);
  Alcotest.(check bool)
    (Printf.sprintf "log loss %.3f finite" s.Q.log_loss)
    true
    (Float.is_finite s.Q.log_loss)

let test_sharpen_injection_worsens_calibration () =
  (* The CI negative test in miniature.  On a perfectly calibrated
     population (confidence 0.7, accuracy 0.7) sharpening is guaranteed
     to worsen the proper scores while leaving top-1 accuracy unchanged:
     the mode never moves, but correct cells gain less log score than
     wrong cells lose. *)
  let d_right = Prob.Dist.of_weights [| 0.7; 0.3 |] in
  let scored gamma =
    let m = monitor () in
    let feed d truth = Q.score_cell m ~attr:0 ~truth (Q.sharpen d gamma) in
    for _ = 1 to 7 do
      feed d_right 0
    done;
    for _ = 1 to 3 do
      feed d_right 1
    done;
    (Q.scores m, Q.ece m)
  in
  let sh, eh = scored 1.0 and si, ei = scored 4.0 in
  Alcotest.(check int) "same cells" sh.Q.cells si.Q.cells;
  Helpers.check_float "same top-1 accuracy" sh.Q.top1_accuracy
    si.Q.top1_accuracy;
  Alcotest.(check bool)
    (Printf.sprintf "log loss worsens (%.4f -> %.4f)" sh.Q.log_loss
       si.Q.log_loss)
    true
    (si.Q.log_loss > sh.Q.log_loss);
  Alcotest.(check bool)
    (Printf.sprintf "Brier worsens (%.4f -> %.4f)" sh.Q.brier si.Q.brier)
    true (si.Q.brier > sh.Q.brier);
  Alcotest.(check bool)
    (Printf.sprintf "ECE worsens (%.4f -> %.4f)" eh ei)
    true (ei > eh);
  (* And the config-level injection is actually wired through
     [shadow_eval]: same cells and accuracy, different proper scores. *)
  let model = dependent_model () in
  let tuples = eval_tuples 200 in
  let honest = monitor () in
  ignore (Q.shadow_eval honest model tuples);
  let inject = monitor ~config:{ Q.default_config with sharpen = 4.0 } () in
  ignore (Q.shadow_eval inject model tuples);
  let sh = Q.scores honest and si = Q.scores inject in
  Alcotest.(check int) "shadow: same cells" sh.Q.cells si.Q.cells;
  Helpers.check_float "shadow: same top-1 accuracy" sh.Q.top1_accuracy
    si.Q.top1_accuracy;
  Alcotest.(check bool) "shadow: scores shift under injection" true
    (sh.Q.log_loss <> si.Q.log_loss)

(* --- drift ------------------------------------------------------------- *)

let test_drift_detects_shift () =
  let model = dependent_model () in
  let m = monitor ~config:{ Q.default_config with drift_threshold = 0.01 } () in
  Q.attach_model m model;
  (* Feed a posterior aggregate concentrated on value 1 for attribute 0 —
     far from the balanced empirical marginal. *)
  for _ = 1 to 40 do
    Q.score_cell m ~attr:0 ~truth:1 (Prob.Dist.of_weights [| 0.02; 0.98 |])
  done;
  match List.find_opt (fun r -> r.Q.attr = 0) (Q.drift_report m) with
  | None -> Alcotest.fail "no drift row for attribute 0"
  | Some r ->
      Alcotest.(check bool)
        (Printf.sprintf "JS %.4f above threshold" r.Q.js)
        true r.Q.alert;
      Alcotest.(check bool) "KL finite under smoothing" true
        (Float.is_finite r.Q.kl)

let test_publish_gauges_and_alerts () =
  let model = dependent_model () in
  let sink = T.create () in
  let m =
    Q.create
      ~config:{ Q.default_config with drift_threshold = 0.01 }
      ~telemetry:sink ()
  in
  Q.attach_model m model;
  for _ = 1 to 20 do
    Q.score_cell m ~attr:0 ~truth:1 (Prob.Dist.of_weights [| 0.02; 0.98 |])
  done;
  let registry = T.create () in
  Q.publish ~registry m;
  (match T.gauge_value sink "quality.ece" with
  | Some _ -> ()
  | None -> Alcotest.fail "quality.ece gauge missing");
  Alcotest.(check int) "one alert transition" 1
    (T.counter sink "quality.drift.alerts");
  (* steady state: republishing the same alerts adds nothing *)
  Q.publish ~registry m;
  Alcotest.(check int) "alert counter stable across republish" 1
    (T.counter sink "quality.drift.alerts")

(* --- ensemble health --------------------------------------------------- *)

let test_health_counters () =
  let model = dependent_model () in
  let registry = T.create () in
  let m = monitor () in
  let workload =
    [ [| None; Some 0; Some 0 |]; [| Some 1; None; Some 1 |] ]
  in
  let sampler = Mrsl.Gibbs.sampler model in
  ignore
    (Mrsl.Workload.run
       ~config:{ Mrsl.Gibbs.burn_in = 5; samples = 20 }
       ~telemetry:registry ~quality:m (Prob.Rng.create 7) sampler workload);
  let h = Q.health ~registry m in
  Alcotest.(check int) "one chain per distinct tuple" 2 h.Q.chains;
  Alcotest.(check int) "no checked runs" 0 h.Q.checked_runs;
  Helpers.check_float "nonconverged share 0 when unchecked" 0.
    h.Q.nonconverged_share;
  (* the workload hook fed the drift aggregate *)
  Alcotest.(check bool) "drift rows from estimates" true
    (Q.drift_report m <> [])

let test_observe_voters_strata () =
  let m = monitor () in
  let model = dependent_model () in
  let tup = [| None; Some 0; Some 0 |] in
  let voters = Mrsl.Infer_single.voters model tup 0 in
  Alcotest.(check bool) "some voters" true (voters <> []);
  Q.observe_voters m voters;
  Q.observe_voters m voters;
  let h = Q.health ~registry:(T.create ()) m in
  Alcotest.(check int) "two tasks" 2 h.Q.tasks;
  Helpers.check_float "voters per task"
    (float_of_int (List.length voters))
    h.Q.voters_per_task;
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 h.Q.strata in
  Alcotest.(check int) "strata cover all voters"
    (2 * List.length voters)
    total

(* --- degradation-rung provenance -------------------------------------- *)

let test_explain_rung_voters () =
  let model = dependent_model () in
  let e = Mrsl.Infer_single.explain model [| None; Some 0; Some 0 |] 0 in
  Alcotest.(check string) "normal path" "voters"
    (Mrsl.Infer_single.rung_name e.Mrsl.Infer_single.rung);
  Alcotest.(check bool) "has contributions" true
    (e.Mrsl.Infer_single.contributions <> [])

let test_explain_rung_degraded () =
  (* A forced voter drop sends explain down the marginal-prior rung:
     contributions are empty and the estimate equals the root CPD. *)
  let model = dependent_model () in
  let tup = [| None; Some 0; Some 0 |] in
  Mrsl.Fault_inject.with_config
    { Mrsl.Fault_inject.disabled with seed = 1; voter_drop_rate = 1.0 }
    (fun () ->
      let e = Mrsl.Infer_single.explain model tup 0 in
      Alcotest.(check string) "degraded rung" "marginal-prior"
        (Mrsl.Infer_single.rung_name e.Mrsl.Infer_single.rung);
      Alcotest.(check (list (pair string (float 1e-9))))
        "no contributions when degraded" []
        (List.map
           (fun (r, s) -> (Format.asprintf "%a" Mrsl.Meta_rule.pp r, s))
           e.Mrsl.Infer_single.contributions);
      (match Mrsl.Infer_single.marginal_prior model 0 with
      | Some prior ->
          Alcotest.(check bool) "estimate is the root CPD" true
            (Prob.Dist.to_array e.Mrsl.Infer_single.estimate
            = Prob.Dist.to_array prior)
      | None -> Alcotest.fail "root CPD missing");
      (* explain records nothing: inference-side telemetry untouched *)
      let m = monitor () in
      Q.observe_rung m e.Mrsl.Infer_single.rung;
      let h = Q.health ~registry:(T.create ()) m in
      Helpers.check_float "marginal rung share" 1.0
        h.Q.degrade_marginal_share)

(* --- the acceptance property: monitoring is observation-only ----------- *)

let test_monitored_run_bit_identical () =
  let model = dependent_model () in
  let workload =
    [
      [| None; Some 0; Some 0 |];
      [| Some 1; None; Some 1 |];
      [| Some 0; Some 0; None |];
      [| None; None; Some 1 |];
      [| Some 1; Some 1; None |];
    ]
  in
  let config = { Mrsl.Gibbs.burn_in = 10; samples = 40 } in
  let snapshot (r : Mrsl.Workload.result) =
    List.map
      (fun (tup, (est : Mrsl.Gibbs.estimate)) ->
        ( tup,
          est.Mrsl.Gibbs.missing,
          Prob.Dist.to_array est.Mrsl.Gibbs.joint,
          est.Mrsl.Gibbs.samples_used ))
      r.Mrsl.Workload.estimates
  in
  let run ?quality domains =
    snapshot
      (Mrsl.Parallel.run ~config ~domains ~telemetry:(T.create ()) ?quality
         ~seed:2011 model workload)
  in
  let bare = run 4 in
  let m = monitor () in
  ignore (Q.shadow_eval m model (eval_tuples 50));
  let watched = run ~quality:m 4 in
  Alcotest.(check bool)
    "monitored 4-domain run bit-identical to unmonitored" true
    (bare = watched);
  (* and identical across domain counts while monitored *)
  let m1 = monitor () in
  Alcotest.(check bool)
    "monitored 1-domain run bit-identical too" true
    (run ~quality:m1 1 = bare)

(* --- epsilon-smoothed KL (divergence satellite) ------------------------ *)

let test_kl_epsilon () =
  let p = Prob.Dist.of_weights [| 0.5; 0.5; 0. |] in
  let q = Prob.Dist.of_weights [| 0.5; 0.; 0.5 |] in
  Alcotest.(check bool)
    "unsmoothed KL infinite under support mismatch" true
    (Prob.Divergence.kl p q = Float.infinity);
  let smoothed = Prob.Divergence.kl ~epsilon:1e-6 p q in
  Alcotest.(check bool) "smoothed KL finite" true (Float.is_finite smoothed);
  Alcotest.(check bool) "smoothed KL positive" true (smoothed > 0.);
  Helpers.check_float ~eps:1e-12 "KL(p, p) = 0 smoothed" 0.
    (Prob.Divergence.kl ~epsilon:1e-6 p p);
  (* smoothing barely perturbs an already-overlapping pair *)
  let a = Prob.Dist.of_weights [| 0.7; 0.3 |]
  and b = Prob.Dist.of_weights [| 0.4; 0.6 |] in
  Helpers.check_float ~eps:1e-4 "epsilon-smoothed close to exact"
    (Prob.Divergence.kl a b)
    (Prob.Divergence.kl ~epsilon:1e-9 a b);
  Alcotest.check_raises "epsilon must be positive"
    (Invalid_argument "Divergence.kl: epsilon must be positive") (fun () ->
      ignore (Prob.Divergence.kl ~epsilon:0. a b))

let suite =
  [
    ("should_mask is deterministic", `Quick, test_should_mask_deterministic);
    ("should_mask respects the fraction", `Quick, test_should_mask_fraction);
    ("sharpen temperature scaling", `Quick, test_sharpen);
    ("ECE/MCE hand-computed", `Quick, test_ece_mce_hand_computed);
    ("empty monitor scores zero", `Quick, test_empty_monitor_scores_zero);
    ( "confidence 1.0 lands in last bin",
      `Quick,
      test_confidence_one_lands_in_last_bin );
    ("p=0 / p=1 endpoints", `Quick, test_endpoint_probabilities);
    ("Brier uniform identity", `Quick, test_brier_uniform_sanity);
    ("score_cell validates truth", `Quick, test_score_cell_validates_truth);
    ("create validates config", `Quick, test_create_validates_config);
    ("shadow eval deterministic", `Quick, test_shadow_eval_deterministic);
    ("shadow eval side-effect free", `Quick, test_shadow_eval_side_effect_free);
    ( "shadow eval scores a good model well",
      `Quick,
      test_shadow_eval_perfect_model_scores_well );
    ( "sharpen injection worsens calibration",
      `Quick,
      test_sharpen_injection_worsens_calibration );
    ("drift detector alerts on shift", `Quick, test_drift_detects_shift);
    ("publish gauges and alert transitions", `Quick,
      test_publish_gauges_and_alerts );
    ("health counters", `Quick, test_health_counters);
    ("voter strata accounting", `Quick, test_observe_voters_strata);
    ("explain reports voters rung", `Quick, test_explain_rung_voters);
    ("explain reports degraded rung", `Quick, test_explain_rung_degraded);
    ( "monitored run bit-identical to unmonitored",
      `Quick,
      test_monitored_run_bit_identical );
    ("epsilon-smoothed KL", `Quick, test_kl_epsilon);
  ]
