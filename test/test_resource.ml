(* Resource-observability tests (resource-observability PR).

   The layer's contract mirrors Trace/Quality: pure observation. The
   suite asserts the observation-only guarantee end to end (monitored
   parallel runs bit-identical to unmonitored), the physical sanity of
   the derived numbers (per-domain utilization bounded by 1), that a
   sample actually publishes the gc.*/mem.* names, that the inference
   hooks populate the allocation histograms only when a monitor is on,
   and — the accounting satellite — that Posterior_cache's budgeted
   bytes stay at or above the Obj.reachable_words ground truth. *)

module T = Mrsl.Telemetry

let model () =
  Mrsl.Model.learn_points
    ~params:{ Mrsl.Model.default_params with support_threshold = 0.01 }
    Helpers.dependent_schema
    (Helpers.dependent_points 400)

let workload =
  [
    [| None; Some 0; Some 0 |];
    [| Some 1; None; Some 1 |];
    [| Some 0; Some 0; None |];
    [| None; None; Some 1 |];
    [| Some 1; Some 1; None |];
    [| None; Some 1; None |];
  ]

let run_parallel ?telemetry () =
  let m = model () in
  let telemetry = Option.value telemetry ~default:(T.create ()) in
  Mrsl.Parallel.run
    ~config:{ Mrsl.Gibbs.burn_in = 15; samples = 60 }
    ~telemetry ~domains:2 ~seed:11 m workload

let joints (r : Mrsl.Workload.result) =
  List.map
    (fun ((_, e) : _ * Mrsl.Gibbs.estimate) ->
      Array.copy (Prob.Dist.to_array e.joint))
    r.estimates

(* Observation-only: a monitored run's posteriors are bit-identical to
   an unmonitored run's — float-exact, not approximately. *)
let test_monitored_bit_identical () =
  let plain = joints (run_parallel ()) in
  let monitored =
    Mrsl.Resource.monitored (fun () -> joints (run_parallel ()))
  in
  Alcotest.(check int)
    "same estimate count" (List.length plain) (List.length monitored);
  List.iter2
    (fun a b ->
      Alcotest.(check bool) "joint arrays bit-identical" true (a = b))
    plain monitored

(* Per-domain utilization: busy time is a subset of each worker's wall,
   so every slot must land in [0, 1] — on a workload that keeps both
   workers busy, and strictly positive for at least one slot. *)
let test_utilization_bounded () =
  let _ = run_parallel () in
  let util = Mrsl.Resource.utilization () in
  Alcotest.(check bool) "snapshot non-empty" true (util <> []);
  List.iter
    (fun (d, u) ->
      Alcotest.(check bool)
        (Printf.sprintf "domain %d utilization %f in [0,1]" d u)
        true
        (u >= 0. && u <= 1.))
    util;
  Alcotest.(check bool)
    "some worker was busy" true
    (List.exists (fun (_, u) -> u > 0.) util)

(* A sample publishes the gc.*/mem.* names into the monitor's registry
   (deltas for counters, levels for gauges). *)
let test_sample_publishes () =
  let reg = T.create () in
  let mon = Mrsl.Resource.create ~telemetry:reg () in
  Mrsl.Resource.install mon;
  Fun.protect ~finally:(fun () -> ignore (Mrsl.Resource.uninstall ()))
  @@ fun () ->
  (* Allocate enough to force collections, then a full major. *)
  let keep = ref [] in
  for i = 1 to 200 do
    keep := Array.make 4096 i :: !keep
  done;
  Gc.full_major ();
  Mrsl.Resource.sample mon;
  ignore (Sys.opaque_identity !keep);
  Alcotest.(check bool)
    "gc.major_collections positive" true
    (T.counter reg "gc.major_collections" > 0);
  Alcotest.(check bool)
    "mem.allocated_bytes positive" true
    (T.counter reg "mem.allocated_bytes" > 0);
  (match T.gauge_value reg "mem.heap_bytes" with
  | Some v -> Alcotest.(check bool) "heap gauge positive" true (v > 0.)
  | None -> Alcotest.fail "mem.heap_bytes gauge missing");
  match T.gauge_value reg "mem.top_heap_bytes" with
  | Some v -> Alcotest.(check bool) "peak heap gauge positive" true (v > 0.)
  | None -> Alcotest.fail "mem.top_heap_bytes gauge missing"

(* The inference hooks record allocation histograms only while a monitor
   is installed — and the observations are strictly positive (inference
   allocates; that is exactly what ROADMAP item 2 wants to shrink). *)
let test_alloc_histograms () =
  let m = model () in
  let tup = [| None; Some 0; Some 0 |] in
  let off = T.create () in
  let reg = T.create () in
  ignore (Mrsl.Infer_single.infer ~telemetry:off m tup 0);
  Alcotest.(check bool)
    "no histogram while disabled" true
    (T.histogram off "mem.alloc_per_infer_bytes" = None);
  let mon = Mrsl.Resource.create ~telemetry:reg () in
  Mrsl.Resource.install mon;
  Fun.protect ~finally:(fun () -> ignore (Mrsl.Resource.uninstall ()))
  @@ fun () ->
  ignore (Mrsl.Infer_single.infer ~telemetry:reg m tup 0);
  let sampler = Mrsl.Gibbs.sampler m in
  ignore
    (Mrsl.Gibbs.chain ~telemetry:reg (Prob.Rng.create 3) sampler
       [| None; None; Some 1 |]);
  (match T.histogram reg "mem.alloc_per_infer_bytes" with
  | Some (s : T.summary) ->
      Alcotest.(check bool) "infer alloc observed" true (s.count > 0);
      Alcotest.(check bool) "infer alloc positive" true (s.max > 0.)
  | None -> Alcotest.fail "mem.alloc_per_infer_bytes missing while enabled");
  match T.histogram reg "mem.alloc_per_chain_bytes" with
  | Some (s : T.summary) ->
      Alcotest.(check bool) "chain alloc observed" true (s.count > 0);
      Alcotest.(check bool) "chain alloc positive" true (s.max > 0.)
  | None -> Alcotest.fail "mem.alloc_per_chain_bytes missing while enabled"

(* Accounting satellite: the cache's budgeted bytes must upper-bound the
   measured heap growth of its tables. The empty-cache footprint (shard
   array, empty hashtables, sentinels) is subtracted so the bound is on
   what entries actually cost. *)
let test_cache_accounting_bound () =
  let m = model () in
  let cache =
    Mrsl.Posterior_cache.create ~telemetry:(T.create ()) ~shards:4
      ~max_bytes:(4 * 1024 * 1024) ()
  in
  let empty_reachable = Mrsl.Posterior_cache.reachable_bytes cache in
  Alcotest.(check bool) "empty footprint measured" true (empty_reachable > 0);
  (* Distinct evidence signatures: vary the known cells. *)
  List.iter
    (fun tup ->
      List.iter
        (fun a ->
          ignore (Mrsl.Infer_single.infer ~cache m tup a))
        (Relation.Tuple.missing tup))
    [
      [| None; Some 0; Some 0 |];
      [| None; Some 0; Some 1 |];
      [| None; Some 1; Some 0 |];
      [| None; Some 1; Some 1 |];
      [| Some 0; None; Some 0 |];
      [| Some 0; None; Some 1 |];
      [| Some 1; None; Some 0 |];
      [| Some 1; None; Some 1 |];
      [| Some 0; Some 0; None |];
      [| Some 0; Some 1; None |];
      [| Some 1; Some 0; None |];
      [| Some 1; Some 1; None |];
      [| None; None; Some 0 |];
      [| None; None; Some 1 |];
    ];
  let st = Mrsl.Posterior_cache.stats cache in
  let full_reachable = Mrsl.Posterior_cache.reachable_bytes cache in
  Alcotest.(check bool) "entries cached" true (st.entries > 0);
  let grown = full_reachable - empty_reachable in
  Alcotest.(check bool)
    (Printf.sprintf "accounted %d >= reachable growth %d (%d entries)"
       st.bytes grown st.entries)
    true (st.bytes >= grown)

(* The serving stats op carries the resources block. *)
let test_engine_stats_resources () =
  let m = model () in
  let engine =
    Serving.Engine.of_model ~telemetry:(T.create ())
      ~config:Serving.Engine.default_config m
  in
  let line =
    Serving.Engine.handle_request engine
      (Serving.Protocol.req Serving.Protocol.Stats)
  in
  let json = T.Json.of_string line in
  match T.Json.member "resources" json with
  | Some res -> (
      (match T.Json.member "gc" res with
      | Some _ -> ()
      | None -> Alcotest.fail "resources.gc missing");
      (match T.Json.member "mem" res with
      | Some _ -> ()
      | None -> Alcotest.fail "resources.mem missing");
      match T.Json.member "cache" res with
      | Some c -> (
          match T.Json.member "reachable_bytes" c with
          | Some _ -> ()
          | None -> Alcotest.fail "resources.cache.reachable_bytes missing")
      | None -> Alcotest.fail "resources.cache missing")
  | None -> Alcotest.fail "stats line has no resources block"

(* Back-to-back samples — `mrsl resources` then a serve stats op, or two
   stats ops in a row — must not double-count: the first sample consumes
   the delta, so an immediate second publishes (almost) nothing beyond
   the sampling machinery's own allocations, and counters stay monotone
   (the clamp forbids negative deltas). *)
let test_back_to_back_samples () =
  let reg = T.create () in
  let mon = Mrsl.Resource.create ~telemetry:reg () in
  Mrsl.Resource.install mon;
  Fun.protect ~finally:(fun () -> ignore (Mrsl.Resource.uninstall ()))
  @@ fun () ->
  (* ~8 MiB of allocation for the first sample to pick up *)
  let keep = ref [] in
  for i = 1 to 256 do
    keep := Array.make 4096 (float_of_int i) :: !keep
  done;
  ignore (Sys.opaque_identity !keep);
  Mrsl.Resource.sample mon;
  let a1 = T.counter reg "mem.allocated_bytes" in
  let g1 = T.counter reg "gc.minor_collections" in
  Alcotest.(check bool) "first sample saw the allocation" true
    (a1 > 4_000_000);
  Mrsl.Resource.sample mon;
  let a2 = T.counter reg "mem.allocated_bytes" in
  let g2 = T.counter reg "gc.minor_collections" in
  Alcotest.(check bool) "counters monotone" true (a2 >= a1 && g2 >= g1);
  Alcotest.(check bool)
    (Printf.sprintf "no double count (second delta %d bytes)" (a2 - a1))
    true
    (a2 - a1 < 1_000_000)

(* [monitored] must restore — not drop — a monitor that was installed
   around it, and re-baseline it on the way back in so the scoped
   window's activity is never published twice. *)
let test_monitored_restores_outer () =
  let outer_reg = T.create () in
  let outer = Mrsl.Resource.create ~telemetry:outer_reg () in
  Mrsl.Resource.install outer;
  Fun.protect ~finally:(fun () -> ignore (Mrsl.Resource.uninstall ()))
  @@ fun () ->
  Mrsl.Resource.sample outer;
  let before = T.counter outer_reg "mem.allocated_bytes" in
  Mrsl.Resource.monitored (fun () ->
      (* ~8 MiB inside the scoped window: published by the scoped
         monitor's final sample, not the outer one *)
      let keep = ref [] in
      for i = 1 to 256 do
        keep := Array.make 4096 (float_of_int i) :: !keep
      done;
      ignore (Sys.opaque_identity !keep));
  (match Mrsl.Resource.installed () with
  | Some m when m == outer -> ()
  | Some _ -> Alcotest.fail "a different monitor is installed"
  | None -> Alcotest.fail "outer monitor was dropped");
  Mrsl.Resource.sample outer;
  let after = T.counter outer_reg "mem.allocated_bytes" in
  Alcotest.(check bool)
    (Printf.sprintf "outer monitor re-baselined (saw %d bytes)"
       (after - before))
    true
    (after - before < 1_000_000)

(* The Prometheus exposition carries the labeled per-domain utilization
   family once a pooled run has recorded a snapshot. *)
let test_exposition_utilization () =
  let reg = T.create () in
  let _ = run_parallel ~telemetry:reg () in
  let text = Mrsl.Trace.prometheus_exposition reg in
  Alcotest.(check bool)
    "mrsl_domain_utilization present" true
    (Astring_like.contains text "mrsl_domain_utilization{domain=\"0\"}")

let suite =
  [
    ("monitored run bit-identical", `Quick, test_monitored_bit_identical);
    ("utilization within [0,1]", `Quick, test_utilization_bounded);
    ("sample publishes gc/mem", `Quick, test_sample_publishes);
    ("alloc histograms gated by monitor", `Quick, test_alloc_histograms);
    ("cache accounting bounds reachable", `Quick, test_cache_accounting_bound);
    ("engine stats resources block", `Quick, test_engine_stats_resources);
    ("back-to-back samples", `Quick, test_back_to_back_samples);
    ("monitored restores outer monitor", `Quick, test_monitored_restores_outer);
    ("exposition domain utilization", `Quick, test_exposition_utilization);
  ]
