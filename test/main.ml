let () =
  Alcotest.run "mrsl-repro"
    [
      ("prob", Test_prob.suite);
      ("telemetry", Test_telemetry.suite);
      ("trace", Test_trace.suite);
      ("metrics", Test_metrics.suite);
      ("relation", Test_relation.suite);
      ("bayesnet", Test_bayesnet.suite);
      ("mining", Test_mining.suite);
      ("fp-growth", Test_fp_growth.suite);
      ("mrsl-model", Test_mrsl_model.suite);
      ("mrsl-sampling", Test_mrsl_sampling.suite);
      ("probdb", Test_probdb.suite);
      ("experiments", Test_experiments.suite);
      ("extensions", Test_extensions.suite);
      ("consistency", Test_consistency.suite);
      ("baselines", Test_baselines.suite);
      ("persistence", Test_persistence.suite);
      ("queries", Test_queries.suite);
      ("faults", Test_faults.suite);
      ("cache", Test_cache.suite);
      ("serving", Test_serving.suite);
      ("stress", Test_stress.suite);
      ("drivers", Test_drivers.suite);
      ("quality", Test_quality.suite);
      ("resource", Test_resource.suite);
      ("kernel", Test_kernel.suite);
    ]
