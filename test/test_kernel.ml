(* Compiled-kernel suite (compiled inference kernels PR).

   The kernel's contract is bit-exactness: for every posterior the
   compiled flat-array vote must reproduce the interpreted lattice
   walk float-for-float, or step aside (return to the interpreted
   path) — never approximate. The differential tests here compare the
   two paths exactly ([=] on the underlying float arrays), across
   voting methods, caching, Gibbs chains and domain counts, plus the
   fallback satellites: mixed-radix overflow, over-wide rule masks,
   epoch invalidation, and the engine's reject-reload atomicity. *)

module T = Mrsl.Telemetry

let with_kernel b f =
  let prev = Mrsl.Kernel.enabled () in
  Mrsl.Kernel.set_enabled b;
  Fun.protect ~finally:(fun () -> Mrsl.Kernel.set_enabled prev) f

let floats (d : Prob.Dist.t) = Array.copy (d :> float array)

let check_bits msg a b =
  if not (a = b) then
    Alcotest.failf "%s: compiled and interpreted posteriors differ" msg

(* --- random small models for the differential fuzz -------------------- *)

let random_model r =
  let arity = 3 + Prob.Rng.int r 3 in
  let cards = Array.init arity (fun _ -> 2 + Prob.Rng.int r 3) in
  let schema = Relation.Schema.of_cardinalities (Array.to_list cards) in
  (* Correlated columns (each tracks a0 with noise) so mining finds
     multi-attribute bodies and the lattices are non-trivial. *)
  let points =
    Array.init 200 (fun _ ->
        let a0 = Prob.Rng.int r cards.(0) in
        Array.init arity (fun a ->
            if a = 0 then a0
            else if Prob.Rng.float r < 0.8 then a0 mod cards.(a)
            else Prob.Rng.int r cards.(a)))
  in
  let model =
    Mrsl.Model.learn_points
      ~params:{ Mrsl.Model.default_params with support_threshold = 0.05 }
      schema points
  in
  (model, cards)

let random_tuple r cards =
  let arity = Array.length cards in
  let tup =
    Array.init arity (fun a ->
        if Prob.Rng.float r < 0.4 then None
        else Some (Prob.Rng.int r cards.(a)))
  in
  if Array.for_all Option.is_some tup then
    tup.(Prob.Rng.int r arity) <- None;
  tup

let missing_attrs tup =
  List.filter
    (fun a -> tup.(a) = None)
    (List.init (Array.length tup) Fun.id)

(* Every posterior the kernel serves must equal the interpreted one
   bit-for-bit — all four voting methods, with and without a posterior
   cache, over randomized models and tuples. *)
let test_fuzz_voting_bit_identical () =
  let r = Prob.Rng.create 20110 in
  for _ = 1 to 8 do
    let model, cards = random_model r in
    let cache_on = Mrsl.Posterior_cache.create () in
    let cache_off = Mrsl.Posterior_cache.create () in
    for _ = 1 to 12 do
      let tup = random_tuple r cards in
      List.iter
        (fun a ->
          List.iter
            (fun method_ ->
              let interp =
                with_kernel false (fun () ->
                    floats (Mrsl.Infer_single.infer ~method_ model tup a))
              in
              let compiled =
                with_kernel true (fun () ->
                    floats (Mrsl.Infer_single.infer ~method_ model tup a))
              in
              check_bits
                (Printf.sprintf "uncached %s"
                   (Mrsl.Voting.method_name method_))
                interp compiled;
              let interp_c =
                with_kernel false (fun () ->
                    floats
                      (Mrsl.Infer_single.infer ~method_ ~cache:cache_off
                         model tup a))
              in
              let compiled_c =
                with_kernel true (fun () ->
                    floats
                      (Mrsl.Infer_single.infer ~method_ ~cache:cache_on
                         model tup a))
              in
              check_bits
                (Printf.sprintf "cached %s"
                   (Mrsl.Voting.method_name method_))
                interp_c compiled_c;
              check_bits "cached = uncached" interp interp_c)
            Mrsl.Voting.all_methods)
        (missing_attrs tup)
    done
  done

(* --- Gibbs ------------------------------------------------------------ *)

let dependent_model =
  lazy
    (Mrsl.Model.learn_points
       ~params:{ Mrsl.Model.default_params with support_threshold = 0.01 }
       Helpers.dependent_schema
       (Helpers.dependent_points 300))

let gibbs_config = { Mrsl.Gibbs.burn_in = 20; samples = 60 }

(* Same seed, same chain: the kernel only changes how each conditional
   CPD is computed, and those are bit-identical, so every draw — and
   therefore the whole joint estimate — must coincide. *)
let test_gibbs_seed_identity () =
  let model = Lazy.force dependent_model in
  let tups = [ [| None; None; Some 1 |]; [| Some 0; None; None |] ] in
  List.iter
    (fun tup ->
      let joint kernel cache =
        with_kernel kernel (fun () ->
            let cache =
              if cache then Some (Mrsl.Posterior_cache.create ()) else None
            in
            let s = Mrsl.Gibbs.sampler ?cache model in
            let e =
              Mrsl.Gibbs.run ~config:gibbs_config (Prob.Rng.create 11) s tup
            in
            floats e.Mrsl.Gibbs.joint)
      in
      check_bits "gibbs uncached" (joint false false) (joint true false);
      check_bits "gibbs cached" (joint false true) (joint true true))
    tups

(* --- parallel --------------------------------------------------------- *)

let estimates_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (ta, (ea : Mrsl.Gibbs.estimate)) (tb, (eb : Mrsl.Gibbs.estimate)) ->
         Relation.Tuple.equal ta tb
         && ea.samples_used = eb.samples_used
         && (ea.joint :> float array) = (eb.joint :> float array))
       a b

let test_parallel_domains_bit_identical () =
  let model = Lazy.force dependent_model in
  let workload =
    [
      [| None; Some 0; Some 0 |];
      [| Some 1; None; Some 1 |];
      [| None; None; Some 1 |];
      [| Some 0; Some 0; None |];
    ]
  in
  let run kernel domains =
    with_kernel kernel (fun () ->
        let r =
          Mrsl.Parallel.run ~config:gibbs_config ~domains ~seed:7 model
            workload
        in
        r.Mrsl.Workload.estimates)
  in
  let reference = run false 1 in
  List.iter
    (fun domains ->
      Alcotest.(check bool)
        (Printf.sprintf "compiled = interpreted at %d domains" domains)
        true
        (estimates_equal reference (run true domains)))
    [ 1; 2; 4 ]

(* --- cache-key namespaces --------------------------------------------- *)

(* Kernel context codes and interpreted signatures live in disjoint key
   namespaces of the same cache: toggling the kernel must never let one
   path hit an entry the other filled. *)
let test_cache_namespaces_disjoint () =
  let model = Lazy.force dependent_model in
  let cache = Mrsl.Posterior_cache.create () in
  let tup = [| None; Some 0; Some 0 |] in
  let infer () = floats (Mrsl.Infer_single.infer ~cache model tup 0) in
  let d1 = with_kernel true infer in
  let s1 = Mrsl.Posterior_cache.stats cache in
  let d2 = with_kernel false infer in
  let s2 = Mrsl.Posterior_cache.stats cache in
  (* the interpreted lookup missed: fresh entry, no hit on the ns=1 key *)
  Alcotest.(check int) "interpreted miss fills a new entry"
    (s1.Mrsl.Posterior_cache.entries + 1)
    s2.Mrsl.Posterior_cache.entries;
  Alcotest.(check int) "no cross-namespace hit" s1.Mrsl.Posterior_cache.hits
    s2.Mrsl.Posterior_cache.hits;
  let d3 = with_kernel true infer in
  let s3 = Mrsl.Posterior_cache.stats cache in
  Alcotest.(check int) "kernel re-lookup hits its own entry"
    (s2.Mrsl.Posterior_cache.hits + 1)
    s3.Mrsl.Posterior_cache.hits;
  check_bits "both namespaces agree" d1 d2;
  check_bits "hit equals fill" d1 d3

(* --- registry lifecycle ----------------------------------------------- *)

let test_epoch_invalidation () =
  let reg = T.create () in
  let points = Helpers.dependent_points 300 in
  let params =
    { Mrsl.Model.default_params with support_threshold = 0.01 }
  in
  let m1 = Mrsl.Model.learn_points ~params Helpers.dependent_schema points in
  ignore (Mrsl.Kernel.ensure ~telemetry:reg m1 : Mrsl.Kernel.t);
  ignore (Mrsl.Kernel.ensure ~telemetry:reg m1 : Mrsl.Kernel.t);
  Alcotest.(check int) "one compile per epoch" 1
    (T.counter reg "kernel.compiles");
  let m2 = Mrsl.Model.learn_points ~params Helpers.dependent_schema points in
  Alcotest.(check bool) "epoch advanced" true
    (Mrsl.Model.epoch m2 <> Mrsl.Model.epoch m1);
  ignore (Mrsl.Kernel.ensure ~telemetry:reg m2 : Mrsl.Kernel.t);
  Alcotest.(check int) "new epoch compiles" 2
    (T.counter reg "kernel.compiles");
  Mrsl.Kernel.invalidate_stale ~current:m2;
  (* m1's kernel was dropped: ensuring it again recompiles *)
  ignore (Mrsl.Kernel.ensure ~telemetry:reg m1 : Mrsl.Kernel.t);
  Alcotest.(check int) "stale epoch dropped" 3
    (T.counter reg "kernel.compiles");
  (* m2's survived invalidation keyed to itself *)
  Mrsl.Kernel.invalidate_stale ~current:m2;
  ignore (Mrsl.Kernel.ensure ~telemetry:reg m2 : Mrsl.Kernel.t);
  Alcotest.(check int) "current epoch retained" 3
    (T.counter reg "kernel.compiles")

let test_hit_counter () =
  let reg = T.create () in
  let model = Lazy.force dependent_model in
  let tup = [| None; Some 0; Some 0 |] in
  with_kernel true (fun () ->
      ignore (Mrsl.Infer_single.infer ~telemetry:reg model tup 0));
  Alcotest.(check bool) "kernel.hits counted" true
    (T.counter reg "kernel.hits" > 0);
  Alcotest.(check int) "no fallback" 0 (T.counter reg "kernel.fallback")

(* --- fallback satellites ---------------------------------------------- *)

let uniform_cpd card = Array.make card (1. /. float_of_int card)

let root_rule ~head_attr ~card =
  Mrsl.Meta_rule.make ~body:Mining.Itemset.empty ~head_attr ~weight:1.0
    ~raw_cpd:(uniform_cpd card) ()

let root_only_lattice ~head_attr ~card =
  Mrsl.Lattice.create ~head_attr ~head_card:card
    ~root:(root_rule ~head_attr ~card)
    []

(* A model whose attribute-0 lattice has a rule body wide/deep enough
   that the kernel cannot represent it; the rule conditions on every
   other attribute at value 0. *)
let wide_body_model ~arity ~card =
  let schema =
    Relation.Schema.of_cardinalities (List.init arity (fun _ -> card))
  in
  let body =
    Mining.Itemset.of_list (List.init (arity - 1) (fun i -> (i + 1, 0)))
  in
  let skewed = Array.init card (fun i -> if i = 0 then 10. else 1.) in
  let rule =
    Mrsl.Meta_rule.make ~body ~head_attr:0 ~weight:0.5 ~raw_cpd:skewed ()
  in
  let lattices =
    Array.init arity (fun a ->
        if a = 0 then
          Mrsl.Lattice.create ~head_attr:0 ~head_card:card
            ~root:(root_rule ~head_attr:0 ~card)
            [ rule ]
        else root_only_lattice ~head_attr:a ~card)
  in
  Mrsl.Model.of_parts schema lattices

(* [known] bounds how many cells carry evidence: the interpreted
   matcher enumerates subsets of the known cells, so the 65-attribute
   mask-width model must be queried with sparse evidence (the kernel's
   fallback decision is per-attribute at compile time and does not
   depend on the tuple). *)
let check_fallback_model name model arity ~known =
  let tup =
    Array.init arity (fun a ->
        if a = 0 || a > known then None else Some 0)
  in
  let k = Mrsl.Kernel.compile model in
  Alcotest.(check bool)
    (name ^ ": attribute 0 not compiled")
    false
    (Mrsl.Kernel.attr_compiled k 0);
  Alcotest.(check bool)
    (name ^ ": trivial attribute still compiled")
    true
    (Mrsl.Kernel.attr_compiled k 1);
  (* a fallback attribute gets no kernel-coded cache key… *)
  with_kernel true (fun () ->
      Alcotest.(check bool)
        (name ^ ": no kernel cache code")
        true
        (Mrsl.Kernel.cache_code model tup 0 = None));
  (* …and its posterior comes from the interpreted path, counted as a
     fallback, bit-identical to a kernel-disabled run *)
  let reg = T.create () in
  let compiled =
    with_kernel true (fun () ->
        floats (Mrsl.Infer_single.infer ~telemetry:reg model tup 0))
  in
  let interp =
    with_kernel false (fun () ->
        floats (Mrsl.Infer_single.infer model tup 0))
  in
  check_bits (name ^ ": fallback equals interpreted") interp compiled;
  Alcotest.(check bool)
    (name ^ ": kernel.fallback counted")
    true
    (T.counter reg "kernel.fallback" > 0);
  Alcotest.(check int) (name ^ ": no kernel hit") 0
    (T.counter reg "kernel.hits");
  (* caching still works through the ns=0 (interpreted-signature) keys *)
  let cache = Mrsl.Posterior_cache.create () in
  with_kernel true (fun () ->
      let a = floats (Mrsl.Infer_single.infer ~cache model tup 0) in
      let b = floats (Mrsl.Infer_single.infer ~cache model tup 0) in
      check_bits (name ^ ": cached fallback stable") a b);
  Alcotest.(check bool)
    (name ^ ": fallback cache hit")
    true
    ((Mrsl.Posterior_cache.stats cache).Mrsl.Posterior_cache.hits > 0)

(* Satellite 1: 9 body attributes of cardinality 256 make the mixed-radix
   place weights (radix 257 each) overflow max_int; the compiler must
   detect this and mark the attribute interpreted-only, never emit a
   wrapped context code. *)
let test_overflow_fallback () =
  check_fallback_model "mixed-radix overflow"
    (wide_body_model ~arity:10 ~card:256)
    10 ~known:9

(* A 65-attribute body exceeds the 62-bit match-mask budget — same
   fallback, different guard. *)
let test_wide_mask_fallback () =
  check_fallback_model "mask width"
    (wide_body_model ~arity:66 ~card:2)
    66 ~known:6

(* --- engine reload atomicity (satellite 2) ----------------------------- *)

module P = Serving.Protocol

let test_engine_rejected_reload_bit_identical () =
  let model = Lazy.force dependent_model in
  let path = Filename.temp_file "mrsl_kernel_test" ".mrsl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  Mrsl.Model_io.save path model;
  let telemetry = T.create () in
  let config =
    {
      Serving.Engine.default_config with
      seed = 2011;
      gibbs = { Mrsl.Gibbs.burn_in = 10; samples = 40 };
    }
  in
  let engine =
    Serving.Engine.of_model ~telemetry ~config ~model_path:path model
  in
  let req = P.req (P.Infer [| None; Some "v0"; Some "v1" |]) in
  let before = Serving.Engine.handle_request engine req in
  let epoch0 = Serving.Engine.epoch engine in
  (match Serving.Engine.reload ~path:"/nonexistent/model.mrsl" engine with
  | Ok _ -> Alcotest.fail "reload of a missing file succeeded"
  | Error _ -> ());
  Alcotest.(check int) "epoch untouched" epoch0 (Serving.Engine.epoch engine);
  let after = Serving.Engine.handle_request engine req in
  (* bit-identical INCLUDING the epoch stamp: the failed reload left
     model, epoch, cache and compiled kernels exactly as they were *)
  Alcotest.(check string) "rejected reload serves identical answers" before
    after

let suite =
  [
    ("fuzz: voting bit-identical ± cache", `Quick, test_fuzz_voting_bit_identical);
    ("gibbs seed-identity ± kernel", `Quick, test_gibbs_seed_identity);
    ("parallel 1/2/4 domains bit-identical", `Quick, test_parallel_domains_bit_identical);
    ("cache-key namespaces disjoint", `Quick, test_cache_namespaces_disjoint);
    ("epoch invalidation", `Quick, test_epoch_invalidation);
    ("kernel.hits counted", `Quick, test_hit_counter);
    ("mixed-radix overflow falls back", `Quick, test_overflow_fallback);
    ("wide mask falls back", `Quick, test_wide_mask_fallback);
    ("rejected reload bit-identical", `Quick, test_engine_rejected_reload_bit_identical);
  ]
