(* Tests for the fault-containment layer: the structured error taxonomy,
   the deterministic fault-injection harness, the lenient CSV reader and
   its malformed-row corpus, the inference degradation ladder, per-task
   containment in the work-stealing scheduler, and convergence-driven
   retries. *)

open Helpers

(* ------------------------------------------------------------------ *)
(* Error taxonomy *)

let test_error_to_string () =
  let e =
    Mrsl.Error.make Mrsl.Error.Input ~code:"csv.bad_row" "boom"
      ~context:[ ("file", "x.csv"); ("line", "3") ]
  in
  Alcotest.(check string)
    "rendered" "input/csv.bad_row: boom [file=x.csv, line=3]"
    (Mrsl.Error.to_string e);
  let bare = Mrsl.Error.make Mrsl.Error.Scheduler ~code:"c" "m" in
  Alcotest.(check string) "no context" "scheduler/c: m"
    (Mrsl.Error.to_string bare)

let test_error_of_exn () =
  let e = Mrsl.Error.of_exn (Invalid_argument "bad") in
  Alcotest.(check string) "invalid_argument class" "inference"
    (Mrsl.Error.class_name e.class_);
  Alcotest.(check string) "invalid_argument code" "invalid_argument" e.code;
  let f = Mrsl.Error.of_exn (Failure "nope") in
  Alcotest.(check string) "failure class" "input"
    (Mrsl.Error.class_name f.class_);
  let n = Mrsl.Error.of_exn Not_found in
  Alcotest.(check string) "other class" "scheduler"
    (Mrsl.Error.class_name n.class_);
  (* Mrsl_error payloads pass through untouched. *)
  let orig = Mrsl.Error.make Mrsl.Error.Model ~code:"k" "m" in
  Alcotest.(check bool) "payload passthrough" true
    (Mrsl.Error.of_exn (Mrsl.Error.Mrsl_error orig) == orig)

let test_error_guard () =
  (match Mrsl.Error.guard (fun () -> 41 + 1) with
  | Ok v -> Alcotest.(check int) "ok" 42 v
  | Error _ -> Alcotest.fail "guard should succeed");
  match Mrsl.Error.guard (fun () -> failwith "x") with
  | Ok _ -> Alcotest.fail "guard should capture"
  | Error e -> Alcotest.(check string) "captured code" "failure" e.code

(* ------------------------------------------------------------------ *)
(* Fault injection harness *)

let cfg ?(seed = 11) ?(task = 0.) ?(csv = 0.) ?(nonconv = 0.) ?(voters = 0.)
    () =
  {
    Mrsl.Fault_inject.disabled with
    seed;
    task_failure_rate = task;
    csv_corruption_rate = csv;
    nonconvergence_rate = nonconv;
    voter_drop_rate = voters;
  }

let test_inject_validates_rates () =
  Alcotest.check_raises "rate > 1"
    (Invalid_argument "Fault_inject: task_failure_rate must be in [0, 1]")
    (fun () -> Mrsl.Fault_inject.configure (cfg ~task:1.5 ()));
  Alcotest.check_raises "rate < 0"
    (Invalid_argument "Fault_inject: csv_corruption_rate must be in [0, 1]")
    (fun () -> Mrsl.Fault_inject.configure (cfg ~csv:(-0.1) ()))

let test_inject_scoped_and_deterministic () =
  Alcotest.(check bool) "inactive by default" false
    (Mrsl.Fault_inject.active ());
  let decisions () =
    List.init 64 (fun i -> Mrsl.Fault_inject.should_fail_task ~node:i)
  in
  let a =
    Mrsl.Fault_inject.with_config (cfg ~task:0.3 ()) (fun () ->
        Alcotest.(check bool) "active inside scope" true
          (Mrsl.Fault_inject.active ());
        decisions ())
  in
  let b =
    Mrsl.Fault_inject.with_config (cfg ~task:0.3 ()) (fun () -> decisions ())
  in
  Alcotest.(check (list bool)) "same seed, same decisions" a b;
  Alcotest.(check bool) "some hit" true (List.mem true a);
  Alcotest.(check bool) "some miss" true (List.mem false a);
  let c =
    Mrsl.Fault_inject.with_config
      (cfg ~seed:99 ~task:0.3 ())
      (fun () -> decisions ())
  in
  Alcotest.(check bool) "different seed, different decisions" true (a <> c);
  (* The scope restores the previous (disabled) configuration, even when
     the body raises. *)
  Alcotest.(check bool) "restored" false (Mrsl.Fault_inject.active ());
  (try
     Mrsl.Fault_inject.with_config (cfg ~task:1.0 ()) (fun () ->
         failwith "boom")
   with Failure _ -> ());
  Alcotest.(check bool) "restored after raise" false
    (Mrsl.Fault_inject.active ())

let test_inject_disabled_never_fires () =
  List.iter
    (fun i ->
      Alcotest.(check bool) "no task faults" false
        (Mrsl.Fault_inject.should_fail_task ~node:i);
      Alcotest.(check bool) "no csv faults" false
        (Mrsl.Fault_inject.should_corrupt_row ~line:i))
    (List.init 32 Fun.id)

(* ------------------------------------------------------------------ *)
(* CSV: malformed-row corpus, strict and lenient *)

let test_csv_strict_messages_preserved () =
  Alcotest.check_raises "ragged"
    (Failure "Csv_io.read_string: row 2 has 3 fields, expected 2") (fun () ->
      ignore (Relation.Csv_io.read_string "a,b\n1,2,3\n"));
  Alcotest.check_raises "empty" (Failure "Csv_io.read_string: empty document")
    (fun () -> ignore (Relation.Csv_io.read_string ""));
  Alcotest.check_raises "unterminated"
    (Failure "Csv_io.parse_line: unterminated quoted field") (fun () ->
      ignore (Relation.Csv_io.read_string "a,b\n\"x,2\n"))

let test_csv_bom_and_crlf () =
  let text = "\xef\xbb\xbfa,b\r\n1,2\r\n?,2\r\n" in
  let strict = Relation.Csv_io.read_string text in
  let lenient, errs = Relation.Csv_io.read_string_lenient text in
  Alcotest.(check int) "strict size" 2 (Relation.Instance.size strict);
  Alcotest.(check int) "lenient size" 2 (Relation.Instance.size lenient);
  Alcotest.(check int) "no errors" 0 (List.length errs);
  Alcotest.(check string) "BOM stripped from header" "a"
    (Relation.Attribute.name
       (Relation.Schema.attribute (Relation.Instance.schema strict) 0))

let test_csv_lenient_line_numbers () =
  (* Physical lines: 1 header, 2 blank, 3 ok, 4 ragged (1 field),
     5 unterminated quote, 6 ragged (3 fields), 7 ok. *)
  let text = "a,b\n\n1,2\nbad\n\"q,2\n1,2,3\n3,4\n" in
  let inst, errs = Relation.Csv_io.read_string_lenient text in
  Alcotest.(check int) "survivors" 2 (Relation.Instance.size inst);
  Alcotest.(check (list int)) "error lines" [ 4; 5; 6 ]
    (List.map (fun (e : Relation.Csv_io.row_error) -> e.line) errs);
  let causes =
    List.map
      (fun (e : Relation.Csv_io.row_error) ->
        Relation.Csv_io.cause_to_string e.cause)
      errs
  in
  Alcotest.(check (list string))
    "causes"
    [
      "ragged row: 1 fields, expected 2"; "unterminated quoted field";
      "ragged row: 3 fields, expected 2";
    ]
    causes;
  Alcotest.(check string) "default file name" "<string>:4: ragged row: 1 fields, expected 2"
    (Relation.Csv_io.row_error_to_string (List.hd errs))

let test_csv_unknown_value_with_schema () =
  let text = "age,edu,inc,nw\n99,HS,50K,100K\n20,HS,50K,100K\n" in
  Alcotest.check_raises "strict"
    (Failure "Csv_io.read_string: unknown value \"99\" for attribute age")
    (fun () ->
      ignore (Relation.Csv_io.read_string ~schema:fig1_schema text));
  let inst, errs =
    Relation.Csv_io.read_string_lenient ~schema:fig1_schema text
  in
  Alcotest.(check int) "one survivor" 1 (Relation.Instance.size inst);
  match errs with
  | [ { line = 2; cause = Unknown_value { field = "99"; attribute = "age" }; _ } ]
    ->
      ()
  | _ -> Alcotest.fail "expected one Unknown_value error on line 2"

let test_csv_lenient_matches_strict_on_clean_input () =
  let strict = fig1_relation () in
  let lenient, errs =
    Relation.Csv_io.read_string_lenient ~schema:fig1_schema fig1_csv
  in
  Alcotest.(check int) "no errors" 0 (List.length errs);
  Alcotest.(check int) "same size" (Relation.Instance.size strict)
    (Relation.Instance.size lenient);
  Array.iteri
    (fun i tup ->
      Alcotest.(check bool) "same tuple" true
        (tup = (Relation.Instance.tuples lenient).(i)))
    (Relation.Instance.tuples strict)

let test_csv_injected_corruption_contained () =
  let text = "a,b\n1,2\n3,4\n1,4\n3,2\n" in
  let schema = Relation.Instance.schema (Relation.Csv_io.read_string text) in
  Mrsl.Fault_inject.with_config (cfg ~csv:1.0 ()) (fun () ->
      let corrupted, lines = Mrsl.Fault_inject.corrupt_csv text in
      Alcotest.(check (list int)) "all data lines hit" [ 2; 3; 4; 5 ] lines;
      (* The header is never corrupted. *)
      Alcotest.(check string) "header intact" "a,b"
        (List.hd (String.split_on_char '\n' corrupted));
      (* Deterministic: same config, same document. *)
      let corrupted', _ = Mrsl.Fault_inject.corrupt_csv text in
      Alcotest.(check string) "deterministic" corrupted corrupted';
      (* Under an explicit schema every corruption shape is caught, and
         the reported lines are exactly the injected ones. *)
      let inst, errs =
        Relation.Csv_io.read_string_lenient ~schema corrupted
      in
      Alcotest.(check int) "no survivors" 0 (Relation.Instance.size inst);
      Alcotest.(check (list int)) "errors name the injected lines" lines
        (List.map (fun (e : Relation.Csv_io.row_error) -> e.line) errs))

(* ------------------------------------------------------------------ *)
(* Gibbs domain-size memo guard (the old -1 sentinel masked real
   Invalid_argument failures) *)

let test_memo_domain_size () =
  Alcotest.(check (option int)) "small" (Some 24)
    (Mrsl.Gibbs.memo_domain_size [| 2; 3; 4 |]);
  (* Overflow no longer masquerades as an error sentinel: it is None. *)
  Alcotest.(check (option int)) "overflow" None
    (Mrsl.Gibbs.memo_domain_size [| max_int; max_int |]);
  Alcotest.check_raises "invalid cardinality"
    (Invalid_argument "Gibbs.sampler: schema cardinality must be >= 1")
    (fun () -> ignore (Mrsl.Gibbs.memo_domain_size [| 2; 0 |]))

(* ------------------------------------------------------------------ *)
(* Degradation ladder *)

let trained_model () =
  Mrsl.Model.learn_points
    ~params:{ Mrsl.Model.default_params with support_threshold = 0.01 }
    dependent_schema (dependent_points 400)

let test_degrade_rungs () =
  let t = Mrsl.Telemetry.create () in
  let prior = Prob.Dist.of_weights [| 3.; 1. |] in
  let d = Mrsl.Infer_single.degrade ~telemetry:t ~card:2 (Some prior) in
  check_float "prior passes through" 0.75 (Prob.Dist.prob d 0);
  Alcotest.(check int) "marginal_prior counted" 1
    (Mrsl.Telemetry.counter t "degrade.marginal_prior");
  let u = Mrsl.Infer_single.degrade ~telemetry:t ~card:4 None in
  check_float "uniform" 0.25 (Prob.Dist.prob u 0);
  Alcotest.(check int) "uniform counted" 1
    (Mrsl.Telemetry.counter t "degrade.uniform")

let test_marginal_prior_is_root_cpd () =
  let model = trained_model () in
  match Mrsl.Infer_single.marginal_prior model 0 with
  | None -> Alcotest.fail "expected a marginal prior"
  | Some d ->
      check_dist_sums_to_one "prior normalized" d;
      (* a0 is uniform over {0,1} in [dependent_points]. *)
      check_float ~eps:0.02 "balanced marginal" 0.5 (Prob.Dist.prob d 0)

let test_voter_drop_degrades_not_raises () =
  let model = trained_model () in
  let tup : Relation.Tuple.t = [| Some 1; None; Some 0 |] in
  let t = Mrsl.Telemetry.create () in
  let d =
    Mrsl.Fault_inject.with_config (cfg ~voters:1.0 ()) (fun () ->
        Mrsl.Infer_single.infer ~telemetry:t model tup 1)
  in
  check_dist_sums_to_one "degraded estimate normalized" d;
  Alcotest.(check int) "ladder rung counted" 1
    (Mrsl.Telemetry.counter t "degrade.marginal_prior"
    + Mrsl.Telemetry.counter t "degrade.uniform");
  (* With every voter dropped, the estimate is the attribute's marginal
     prior, not the (sharp) conditional. *)
  match Mrsl.Infer_single.marginal_prior model 1 with
  | Some prior ->
      check_float "falls back to the root CPD" (Prob.Dist.prob prior 0)
        (Prob.Dist.prob d 0)
  | None -> Alcotest.fail "trained model must have a root CPD"

let test_fault_keys_discriminate_wide_tuples () =
  (* Regression: the voter-drop and forced-nonconvergence sites used to
     key decisions with [Stdlib.Hashtbl.hash tup], whose bounded
     traversal ignores the tail of wide tuples — tuples differing only
     past the traversal limit all received the SAME injection decision.
     The keys now come from the full-traversal mixed-radix evidence
     code, so at a fractional rate the decisions over tail-only variants
     must not be constant. *)
  let arity = 48 in
  let cards = Array.make arity 3 in
  let base = Array.init arity (fun _ -> Some 0) in
  let variants =
    List.init 27 (fun v ->
        let t = Array.copy base in
        t.(arity - 1) <- Some (v mod 3);
        t.(arity - 2) <- Some (v / 3 mod 3);
        t.(arity - 3) <- Some (v / 9 mod 3);
        t)
  in
  Mrsl.Fault_inject.with_config
    (cfg ~seed:42 ~nonconv:0.5 ~voters:0.5 ())
    (fun () ->
      let varies decide =
        let ds = List.map decide variants in
        List.exists Fun.id ds && List.exists not ds
      in
      Alcotest.(check bool) "voter-drop decisions vary across tail cells"
        true
        (varies (fun t ->
             Mrsl.Fault_inject.should_drop_voters
               ~key:(Mrsl.Posterior_cache.evidence_key ~cards t 0)));
      Alcotest.(check bool)
        "nonconvergence decisions vary across tail cells" true
        (varies (fun t ->
             Mrsl.Fault_inject.should_force_nonconvergence
               ~key:(Mrsl.Posterior_cache.tuple_code ~cards t))))

let test_infer_result_boundary () =
  let model = trained_model () in
  (* Attribute 0 is present, so the task is structurally invalid. *)
  match Mrsl.Infer_single.infer_result model [| Some 0; None; None |] 0 with
  | Ok _ -> Alcotest.fail "expected Error"
  | Error e ->
      Alcotest.(check string) "class" "input"
        (Mrsl.Error.class_name e.class_);
      Alcotest.(check string) "code" "infer.bad_task" e.code

(* ------------------------------------------------------------------ *)
(* Scheduler fault containment *)

let small_workload () : Relation.Tuple.t list =
  [
    [| Some 0; None; None |];
    [| Some 1; None; None |];
    [| None; None; Some 0 |];
    [| None; None; None |];
    [| Some 0; Some 0; None |];
  ]

let run_config = { Mrsl.Gibbs.burn_in = 10; samples = 100 }

(* Find an injection seed that fails exactly one of the 5 DAG nodes and
   leaves at least one survivor, using the same pure predicate the
   scheduler consults — nothing about the failing set is hard-coded. *)
let containment_fixture model workload =
  let n = List.length workload in
  let rec find s =
    if s > 2000 then Alcotest.fail "no suitable injection seed found"
    else
      let c = cfg ~seed:s ~task:0.3 () in
      let own =
        Mrsl.Fault_inject.with_config c (fun () ->
            List.filter
              (fun i -> Mrsl.Fault_inject.should_fail_task ~node:i)
              (List.init n Fun.id))
      in
      if List.length own <> 1 then find (s + 1)
      else
        let contained =
          Mrsl.Fault_inject.with_config c (fun () ->
              Mrsl.Parallel.run_contained ~config:run_config ~domains:1
                ~policy:Mrsl.Parallel.Skip_and_report ~seed:17 model workload)
        in
        if contained.Mrsl.Parallel.result.estimates = [] then find (s + 1)
        else (c, own, contained)
  in
  find 0

let test_containment_skips_and_reports () =
  let model = trained_model () in
  let workload = small_workload () in
  let c, own, contained = containment_fixture model workload in
  ignore c;
  let faults = contained.Mrsl.Parallel.faults in
  Alcotest.(check bool) "at least one fault" true (faults <> []);
  Alcotest.(check int) "everything accounted for" 5
    (List.length contained.result.estimates + List.length faults);
  (* Exactly one fault is the task's own; the rest are upstream skips
     naming it as root cause. *)
  let own_node = List.hd own in
  List.iter
    (fun (f : Mrsl.Parallel.tuple_fault) ->
      if f.node = own_node then begin
        Alcotest.(check string) "own failure code" "fault_inject.task"
          f.error.code;
        Alcotest.(check bool) "no upstream for the root" true
          (f.upstream = None)
      end
      else begin
        Alcotest.(check string) "descendant code" "task.upstream_failed"
          f.error.code;
        Alcotest.(check bool) "upstream names the root" true
          (f.upstream = Some own_node)
      end)
    faults

let test_containment_bit_identical_survivors () =
  let model = trained_model () in
  let workload = small_workload () in
  let c, _, reference = containment_fixture model workload in
  (* Fault-free baseline with the same seed. *)
  let clean =
    Mrsl.Parallel.run ~config:run_config ~domains:1 ~seed:17 model workload
  in
  let check_against (contained : Mrsl.Parallel.contained) label =
    (* Same fault set as the domains:1 reference. *)
    Alcotest.(check (list int))
      (label ^ " same skipped nodes")
      (List.map (fun (f : Mrsl.Parallel.tuple_fault) -> f.node)
         reference.faults)
      (List.map (fun (f : Mrsl.Parallel.tuple_fault) -> f.node)
         contained.faults);
    (* Surviving estimates bit-identical to the fault-free run. *)
    List.iter
      (fun (tup, (est : Mrsl.Gibbs.estimate)) ->
        match
          List.find_opt (fun (t, _) -> t = tup) clean.Mrsl.Workload.estimates
        with
        | None -> Alcotest.fail "survivor missing from fault-free run"
        | Some (_, (clean_est : Mrsl.Gibbs.estimate)) ->
            Alcotest.(check int)
              (label ^ " same sample count")
              clean_est.samples_used est.samples_used;
            Array.iteri
              (fun i p ->
                Alcotest.(check (float 0.))
                  (Printf.sprintf "%s joint[%d] bit-identical" label i)
                  (Prob.Dist.to_array clean_est.joint).(i)
                  p)
              (Prob.Dist.to_array est.joint))
      contained.result.estimates
  in
  check_against reference "domains:1";
  List.iter
    (fun domains ->
      let contained =
        Mrsl.Fault_inject.with_config c (fun () ->
            Mrsl.Parallel.run_contained ~config:run_config ~domains
              ~policy:Mrsl.Parallel.Skip_and_report ~seed:17 model workload)
      in
      check_against contained (Printf.sprintf "domains:%d" domains))
    [ 2; 4 ]

let test_containment_counts_telemetry () =
  let model = trained_model () in
  let workload = small_workload () in
  let c, _, reference = containment_fixture model workload in
  let t = Mrsl.Telemetry.create () in
  let contained =
    Mrsl.Fault_inject.with_config c (fun () ->
        Mrsl.Parallel.run_contained ~config:run_config ~domains:2
          ~telemetry:t ~policy:Mrsl.Parallel.Skip_and_report ~seed:17 model
          workload)
  in
  Alcotest.(check int) "task failures counted" 1
    (Mrsl.Telemetry.counter t "fault.task_failures");
  Alcotest.(check int) "skipped tuples counted"
    (List.length reference.faults)
    (Mrsl.Telemetry.counter t "fault.tuples_skipped");
  Alcotest.(check int) "upstream skips counted"
    (List.length reference.faults - 1)
    (Mrsl.Telemetry.counter t "fault.upstream_skipped");
  Alcotest.(check int) "consistent report"
    (List.length reference.faults)
    (List.length contained.faults)

let test_fail_fast_policy_raises () =
  let model = trained_model () in
  let workload = small_workload () in
  let c, _, _ = containment_fixture model workload in
  match
    Mrsl.Fault_inject.with_config c (fun () ->
        Mrsl.Parallel.run_contained ~config:run_config ~domains:2 ~seed:17
          model workload)
  with
  | _ -> Alcotest.fail "Fail_fast should re-raise the injected fault"
  | exception Mrsl.Error.Mrsl_error e ->
      Alcotest.(check string) "injected code" "fault_inject.task" e.code

let test_run_wrapper_unchanged () =
  (* The back-compat wrapper equals run_contained's result under
     Fail_fast with no injection. *)
  let model = trained_model () in
  let workload = small_workload () in
  let a =
    Mrsl.Parallel.run ~config:run_config ~domains:2 ~seed:4 model workload
  in
  let b =
    Mrsl.Parallel.run_contained ~config:run_config ~domains:2 ~seed:4 model
      workload
  in
  Alcotest.(check int) "no faults" 0 (List.length b.faults);
  List.iter2
    (fun (_, (ea : Mrsl.Gibbs.estimate)) (_, (eb : Mrsl.Gibbs.estimate)) ->
      check_float "same estimates" (Prob.Dist.prob ea.joint 0)
        (Prob.Dist.prob eb.joint 0))
    a.estimates b.result.estimates

(* ------------------------------------------------------------------ *)
(* Convergence-driven retries *)

let test_retry_success_single_attempt () =
  let model = trained_model () in
  let sampler = Mrsl.Gibbs.sampler model in
  let checked =
    Mrsl.Diagnostics.run_with_retries
      ~config:{ Mrsl.Gibbs.burn_in = 10; samples = 200 }
      (Prob.Rng.create 3) sampler [| Some 0; None; None |]
  in
  Alcotest.(check bool) "converged" true checked.converged;
  Alcotest.(check int) "single attempt" 1 checked.attempts;
  Alcotest.(check int) "sweeps accounted" 210 checked.total_sweeps;
  Alcotest.(check bool) "rhat sane" true (checked.rhat <= 1.1);
  check_dist_sums_to_one "estimate normalized" checked.estimate.joint

let test_retry_budget_exhaustion () =
  let model = trained_model () in
  let sampler = Mrsl.Gibbs.sampler model in
  let t = Mrsl.Telemetry.create () in
  let checked =
    Mrsl.Fault_inject.with_config (cfg ~nonconv:1.0 ()) (fun () ->
        Mrsl.Diagnostics.run_with_retries
          ~config:{ Mrsl.Gibbs.burn_in = 10; samples = 20 }
          ~telemetry:t (Prob.Rng.create 3) sampler [| Some 0; None; None |])
  in
  Alcotest.(check bool) "flagged, not raised" false checked.converged;
  (* 1 initial attempt + default max_retries with doubled draws:
     (10+20) + (10+40) + (10+80) sweeps. *)
  Alcotest.(check int) "attempts"
    (1 + Mrsl.Diagnostics.default_retry_policy.max_retries)
    checked.attempts;
  Alcotest.(check int) "sweeps accounted" 170 checked.total_sweeps;
  Alcotest.(check int) "retries counted" 2
    (Mrsl.Telemetry.counter t "gibbs.retries");
  Alcotest.(check int) "degradation counted" 1
    (Mrsl.Telemetry.counter t "degrade.nonconverged");
  check_dist_sums_to_one "degraded estimate still usable"
    checked.estimate.joint

let test_retry_sweep_budget_caps_attempts () =
  let model = trained_model () in
  let sampler = Mrsl.Gibbs.sampler model in
  let policy =
    {
      Mrsl.Diagnostics.default_retry_policy with
      max_retries = 10;
      max_total_sweeps = 100;
    }
  in
  let checked =
    Mrsl.Fault_inject.with_config (cfg ~nonconv:1.0 ()) (fun () ->
        Mrsl.Diagnostics.run_with_retries
          ~config:{ Mrsl.Gibbs.burn_in = 10; samples = 20 }
          ~policy (Prob.Rng.create 3) sampler [| Some 0; None; None |])
  in
  (* Attempt 1 costs 30 sweeps; attempt 2 would bring the total to 80,
     attempt 3 would exceed 100 — so exactly two attempts run. *)
  Alcotest.(check int) "sweep budget stops retries" 2 checked.attempts;
  Alcotest.(check bool) "within budget" true (checked.total_sweeps <= 100);
  Alcotest.(check bool) "flagged" false checked.converged

let test_retry_policy_validation () =
  let model = trained_model () in
  let sampler = Mrsl.Gibbs.sampler model in
  let bad policy msg =
    Alcotest.check_raises "policy validated" (Invalid_argument msg)
      (fun () ->
        ignore
          (Mrsl.Diagnostics.run_with_retries ~policy (Prob.Rng.create 1)
             sampler [| Some 0; None; None |]))
  in
  bad
    { Mrsl.Diagnostics.default_retry_policy with max_retries = -1 }
    "Diagnostics.run_with_retries: max_retries must be >= 0";
  bad
    { Mrsl.Diagnostics.default_retry_policy with max_total_sweeps = 0 }
    "Diagnostics.run_with_retries: max_total_sweeps must be >= 1"

let test_split_rhat_short_series_trivial () =
  let model = trained_model () in
  let sampler = Mrsl.Gibbs.sampler model in
  let tup : Relation.Tuple.t = [| Some 0; None; None |] in
  let points = List.init 4 (fun i -> [| 0; 0; i mod 2 |]) in
  check_float "fewer than 8 points is trivially converged" 1.0
    (Mrsl.Diagnostics.split_rhat sampler tup points)

let suite =
  [
    ("error to_string", `Quick, test_error_to_string);
    ("error of_exn classification", `Quick, test_error_of_exn);
    ("error guard", `Quick, test_error_guard);
    ("inject validates rates", `Quick, test_inject_validates_rates);
    ( "inject scoped and deterministic",
      `Quick,
      test_inject_scoped_and_deterministic );
    ("inject disabled never fires", `Quick, test_inject_disabled_never_fires);
    ("csv strict messages preserved", `Quick, test_csv_strict_messages_preserved);
    ("csv BOM and CRLF", `Quick, test_csv_bom_and_crlf);
    ("csv lenient line numbers", `Quick, test_csv_lenient_line_numbers);
    ("csv unknown value with schema", `Quick, test_csv_unknown_value_with_schema);
    ( "csv lenient matches strict on clean input",
      `Quick,
      test_csv_lenient_matches_strict_on_clean_input );
    ( "csv injected corruption contained",
      `Quick,
      test_csv_injected_corruption_contained );
    ("gibbs memo_domain_size", `Quick, test_memo_domain_size);
    ("ladder degrade rungs", `Quick, test_degrade_rungs);
    ("ladder marginal prior is root CPD", `Quick, test_marginal_prior_is_root_cpd);
    ( "ladder voter drop degrades not raises",
      `Quick,
      test_voter_drop_degrades_not_raises );
    ( "fault keys discriminate wide tuples",
      `Quick,
      test_fault_keys_discriminate_wide_tuples );
    ("infer_result boundary", `Quick, test_infer_result_boundary);
    ("containment skips and reports", `Quick, test_containment_skips_and_reports);
    ( "containment bit-identical survivors",
      `Quick,
      test_containment_bit_identical_survivors );
    ("containment telemetry", `Quick, test_containment_counts_telemetry);
    ("fail-fast policy raises", `Quick, test_fail_fast_policy_raises);
    ("run wrapper unchanged", `Quick, test_run_wrapper_unchanged);
    ("retry success single attempt", `Quick, test_retry_success_single_attempt);
    ("retry budget exhaustion", `Quick, test_retry_budget_exhaustion);
    ( "retry sweep budget caps attempts",
      `Quick,
      test_retry_sweep_budget_caps_attempts );
    ("retry policy validation", `Quick, test_retry_policy_validation);
    ("split rhat short series trivial", `Quick, test_split_rhat_short_series_trivial);
  ]
