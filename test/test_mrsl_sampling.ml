(* Tests for Gibbs sampling (Section V-A), the tuple DAG (Section V-B), and
   the workload strategies (Algorithm 3). *)

open Helpers

(* A model over 3 binary attributes with a1 = a0 deterministic-ish and a2
   independent, learned from enough data to be sharp. *)
let trained_model () =
  Mrsl.Model.learn_points
    ~params:{ Mrsl.Model.default_params with support_threshold = 0.01 }
    dependent_schema (dependent_points 400)

let test_sampler_conditional_matches_infer () =
  let model = trained_model () in
  let s = Mrsl.Gibbs.sampler model in
  let point = [| 1; 0; 1 |] in
  let via_sampler = Mrsl.Gibbs.conditional s point 1 in
  let via_infer =
    Mrsl.Infer_single.infer model [| Some 1; None; Some 1 |] 1
  in
  check_float "same estimate" (Prob.Dist.prob via_infer 0)
    (Prob.Dist.prob via_sampler 0)

let test_sampler_memo_hits () =
  let model = trained_model () in
  let s = Mrsl.Gibbs.sampler model in
  let point = [| 1; 0; 1 |] in
  ignore (Mrsl.Gibbs.conditional s point 1);
  ignore (Mrsl.Gibbs.conditional s point 1);
  ignore (Mrsl.Gibbs.conditional s point 1);
  let hits, misses = Mrsl.Gibbs.cache_stats s in
  Alcotest.(check int) "one miss" 1 misses;
  Alcotest.(check int) "two hits" 2 hits

let test_sampler_memo_distinguishes_states () =
  let model = trained_model () in
  let s = Mrsl.Gibbs.sampler model in
  ignore (Mrsl.Gibbs.conditional s [| 1; 0; 1 |] 1);
  ignore (Mrsl.Gibbs.conditional s [| 0; 0; 1 |] 1);
  ignore (Mrsl.Gibbs.conditional s [| 1; 0; 1 |] 2);
  let _, misses = Mrsl.Gibbs.cache_stats s in
  Alcotest.(check int) "three distinct keys" 3 misses

let test_conditional_ignores_own_slot () =
  (* The memo key zeroes the resampled attribute, so the current value in
     that slot must not change the result. *)
  let model = trained_model () in
  let s = Mrsl.Gibbs.sampler model in
  let a = Mrsl.Gibbs.conditional s [| 1; 0; 1 |] 1 in
  let b = Mrsl.Gibbs.conditional s [| 1; 1; 1 |] 1 in
  check_float "slot-independent" (Prob.Dist.prob a 0) (Prob.Dist.prob b 0)

let test_chain_keeps_evidence_fixed () =
  let model = trained_model () in
  let s = Mrsl.Gibbs.sampler model in
  let r = rng () in
  let c = Mrsl.Gibbs.chain r s [| Some 1; None; None |] in
  for _ = 1 to 50 do
    let point = Mrsl.Gibbs.sweep r c in
    Alcotest.(check int) "evidence fixed" 1 point.(0);
    Array.iter
      (fun v ->
        if v < 0 || v > 1 then Alcotest.failf "value out of range: %d" v)
      point
  done

let test_chain_rejects_complete () =
  let model = trained_model () in
  let s = Mrsl.Gibbs.sampler model in
  Alcotest.check_raises "complete"
    (Invalid_argument "Gibbs.chain: tuple is complete") (fun () ->
      ignore (Mrsl.Gibbs.chain (rng ()) s [| Some 0; Some 0; Some 0 |]))

let test_estimate_of_points () =
  let model = trained_model () in
  let s = Mrsl.Gibbs.sampler model in
  let tup : Relation.Tuple.t = [| Some 0; None; None |] in
  (* 3 of 4 points at (a1=0, a2=0), 1 at (a1=1, a2=1). *)
  let points = [ [| 0; 0; 0 |]; [| 0; 0; 0 |]; [| 0; 0; 0 |]; [| 0; 1; 1 |] ] in
  let est = Mrsl.Gibbs.estimate_of_points s tup points in
  Alcotest.(check (list int)) "missing attrs" [ 1; 2 ] est.missing;
  Alcotest.(check int) "samples used" 4 est.samples_used;
  check_float ~eps:1e-3 "cell (0,0)" 0.75 (Prob.Dist.prob est.joint 0);
  check_float ~eps:1e-3 "cell (1,1)" 0.25 (Prob.Dist.prob est.joint 3);
  check_dist_positive "smoothed positive" est.joint

let test_estimate_marginal () =
  let model = trained_model () in
  let s = Mrsl.Gibbs.sampler model in
  let tup : Relation.Tuple.t = [| Some 0; None; None |] in
  let points = [ [| 0; 0; 0 |]; [| 0; 0; 1 |]; [| 0; 1; 1 |]; [| 0; 1; 1 |] ] in
  let est = Mrsl.Gibbs.estimate_of_points s tup points in
  let m1 = Mrsl.Gibbs.marginal est 1 in
  check_float ~eps:1e-3 "marginal a1=0" 0.5 (Prob.Dist.prob m1 0);
  let m2 = Mrsl.Gibbs.marginal est 2 in
  check_float ~eps:1e-3 "marginal a2=1" 0.75 (Prob.Dist.prob m2 1);
  Alcotest.check_raises "not missing"
    (Invalid_argument "Gibbs.marginal: attribute not missing in estimate")
    (fun () -> ignore (Mrsl.Gibbs.marginal est 0))

let test_gibbs_recovers_dependency () =
  (* With a0 = 1 observed, the sampler must put almost all mass on a1 = 1,
     and close to half on each value of the independent a2. *)
  let model = trained_model () in
  let s = Mrsl.Gibbs.sampler model in
  let est =
    Mrsl.Gibbs.run
      ~config:{ burn_in = 50; samples = 2000 }
      (rng ()) s
      [| Some 1; None; None |]
  in
  let m1 = Mrsl.Gibbs.marginal est 1 in
  Alcotest.(check bool) "dependency recovered" true (Prob.Dist.prob m1 1 > 0.9);
  let m2 = Mrsl.Gibbs.marginal est 2 in
  Alcotest.(check bool) "independent attr near half" true
    (Float.abs (Prob.Dist.prob m2 0 -. 0.5) < 0.1)

let test_gibbs_matches_exact_posterior_on_bn () =
  (* End-to-end: generate a BN, learn MRSL from a large sample, Gibbs-infer
     a 2-missing tuple, compare with the exact posterior — KL must be small. *)
  let entry = Bayesnet.Catalog.find "BN8" in
  let r = rng () in
  let net = Bayesnet.Network.generate r entry.topology in
  let data = Bayesnet.Network.sample_instance r net 4000 in
  let model =
    Mrsl.Model.learn
      ~params:{ Mrsl.Model.default_params with support_threshold = 0.005 }
      data
  in
  let s = Mrsl.Gibbs.sampler model in
  let tup : Relation.Tuple.t = [| Some 0; Some 0; None; None |] in
  let _, truth = Bayesnet.Network.posterior_joint net tup in
  let est =
    Mrsl.Gibbs.run ~config:{ burn_in = 100; samples = 3000 } r s tup
  in
  let kl = Prob.Divergence.kl truth est.joint in
  if kl > 0.25 then Alcotest.failf "Gibbs KL too large: %f" kl

let test_gibbs_run_deterministic () =
  let model = trained_model () in
  let s = Mrsl.Gibbs.sampler model in
  let run () =
    Mrsl.Gibbs.run
      ~config:{ burn_in = 10; samples = 200 }
      (Prob.Rng.create 11) s
      [| Some 0; None; None |]
  in
  let a = run () and b = run () in
  check_float "same seed, same estimate" (Prob.Dist.prob a.joint 0)
    (Prob.Dist.prob b.joint 0)

(* Tuple DAG *)

let fig3_workload () : Relation.Tuple.t list =
  (* The six incomplete tuples of Fig 3 over the Fig 1 schema:
     t1=(20,HS,?,?) t3=(20,?,50K,?) t5=(20,?,?,?)
     t8=(?,HS,?,?) t11=(30,HS,?,?) t12=(30,MS,?,?). *)
  [
    [| Some 0; Some 0; None; None |];
    [| Some 0; None; Some 0; None |];
    [| Some 0; None; None; None |];
    [| None; Some 0; None; None |];
    [| Some 1; Some 0; None; None |];
    [| Some 1; Some 2; None; None |];
  ]

let test_tuple_dag_fig3_structure () =
  let dag = Mrsl.Tuple_dag.build (fig3_workload ()) in
  Alcotest.(check int) "six nodes" 6 (Mrsl.Tuple_dag.node_count dag);
  let idx tup =
    match Mrsl.Tuple_dag.index_of dag tup with
    | Some i -> i
    | None -> Alcotest.fail "tuple not in DAG"
  in
  let t1 = idx [| Some 0; Some 0; None; None |] in
  let t3 = idx [| Some 0; None; Some 0; None |] in
  let t5 = idx [| Some 0; None; None; None |] in
  let t8 = idx [| None; Some 0; None; None |] in
  let t11 = idx [| Some 1; Some 0; None; None |] in
  let t12 = idx [| Some 1; Some 2; None; None |] in
  (* Fig 3: roots are t5 and t8 (and t12, which no tuple subsumes). *)
  let roots = Mrsl.Tuple_dag.roots dag in
  Alcotest.(check bool) "t5 is root" true (List.mem t5 roots);
  Alcotest.(check bool) "t8 is root" true (List.mem t8 roots);
  Alcotest.(check bool) "t12 is root" true (List.mem t12 roots);
  Alcotest.(check bool) "t1 not root" false (List.mem t1 roots);
  (* Edges of Fig 3: t5→t1, t5→t3, t8→t1, t8→t11. *)
  Alcotest.(check (list int)) "children of t5" (List.sort Int.compare [ t1; t3 ])
    (Mrsl.Tuple_dag.children dag t5);
  Alcotest.(check (list int)) "children of t8" (List.sort Int.compare [ t1; t11 ])
    (Mrsl.Tuple_dag.children dag t8);
  Alcotest.(check (list int)) "parents of t1" (List.sort Int.compare [ t5; t8 ])
    (Mrsl.Tuple_dag.parents dag t1);
  Alcotest.(check int) "edge count" 4 (Mrsl.Tuple_dag.edge_count dag)

let test_tuple_dag_dedup () =
  let tup : Relation.Tuple.t = [| Some 0; None; None; None |] in
  let dag = Mrsl.Tuple_dag.build [ tup; Array.copy tup; Array.copy tup ] in
  Alcotest.(check int) "deduplicated" 1 (Mrsl.Tuple_dag.node_count dag)

let test_tuple_dag_hasse_reduction () =
  (* A chain ⊥ ≺ {a0} ≺ {a0,a1}: the top must not link directly to the
     bottom. *)
  let w : Relation.Tuple.t list =
    [
      [| None; None; None |];
      [| Some 0; None; None |];
      [| Some 0; Some 0; None |];
    ]
  in
  let dag = Mrsl.Tuple_dag.build w in
  Alcotest.(check int) "two cover edges" 2 (Mrsl.Tuple_dag.edge_count dag);
  let top =
    match Mrsl.Tuple_dag.index_of dag [| None; None; None |] with
    | Some i -> i
    | None -> assert false
  in
  Alcotest.(check int) "top has one child" 1
    (List.length (Mrsl.Tuple_dag.children dag top));
  let bottom =
    match Mrsl.Tuple_dag.index_of dag [| Some 0; Some 0; None |] with
    | Some i -> i
    | None -> assert false
  in
  Alcotest.(check (list int)) "ancestors of bottom" [ top ]
    (List.filter (fun a -> a = top) (Mrsl.Tuple_dag.ancestors dag bottom))

let test_tuple_dag_rejects_complete () =
  Alcotest.check_raises "complete tuple"
    (Invalid_argument "Tuple_dag.build: complete tuples have nothing to infer")
    (fun () -> ignore (Mrsl.Tuple_dag.build [ [| Some 0; Some 1 |] ]))

let test_tuple_dag_empty () =
  let dag = Mrsl.Tuple_dag.build [] in
  Alcotest.(check int) "empty" 0 (Mrsl.Tuple_dag.node_count dag);
  Alcotest.(check (list int)) "no roots" [] (Mrsl.Tuple_dag.roots dag)

(* Workload strategies *)

let small_workload () : Relation.Tuple.t list =
  [
    [| Some 0; None; None |];
    [| Some 1; None; None |];
    [| None; None; Some 0 |];
    [| None; None; None |];
    [| Some 0; Some 0; None |];
  ]

let run_strategy strategy =
  let model = trained_model () in
  let s = Mrsl.Gibbs.sampler model in
  Mrsl.Workload.run
    ~config:{ burn_in = 20; samples = 150 }
    ~strategy (Prob.Rng.create 3) s (small_workload ())

let test_workload_covers_all_tuples () =
  List.iter
    (fun strategy ->
      let result = run_strategy strategy in
      Alcotest.(check int)
        (Mrsl.Workload.strategy_name strategy ^ " covers workload")
        5
        (List.length result.estimates);
      List.iter
        (fun (_, (est : Mrsl.Gibbs.estimate)) ->
          Alcotest.(check bool) "reached target samples" true
            (est.samples_used >= 150);
          check_dist_sums_to_one "estimate normalized" est.joint)
        result.estimates)
    Mrsl.Workload.[ Tuple_at_a_time; Tuple_dag; All_at_a_time ]

let test_workload_tuple_at_a_time_accounting () =
  let result = run_strategy Mrsl.Workload.Tuple_at_a_time in
  (* 5 distinct tuples × (20 burn-in + 150 samples). *)
  Alcotest.(check int) "sweeps" (5 * 170) result.stats.sweeps;
  Alcotest.(check int) "recorded" (5 * 150) result.stats.recorded;
  Alcotest.(check int) "nothing shared" 0 result.stats.shared

let test_workload_dag_cheaper () =
  let baseline = run_strategy Mrsl.Workload.Tuple_at_a_time in
  let dag = run_strategy Mrsl.Workload.Tuple_dag in
  Alcotest.(check bool) "tuple-DAG uses fewer sweeps" true
    (dag.stats.sweeps < baseline.stats.sweeps);
  Alcotest.(check bool) "some samples shared" true (dag.stats.shared > 0)

let test_workload_strategies_agree () =
  let baseline = run_strategy Mrsl.Workload.Tuple_at_a_time in
  let dag = run_strategy Mrsl.Workload.Tuple_dag in
  (* Section VI-D: "no difference" in accuracy. With 150 samples we allow a
     generous sampling-noise budget. *)
  let tv = Experiments.Framework.joint_agreement baseline dag in
  if tv > 0.2 then Alcotest.failf "strategies disagree: mean TV %f" tv

let test_workload_dedups () =
  let model = trained_model () in
  let s = Mrsl.Gibbs.sampler model in
  let tup : Relation.Tuple.t = [| Some 0; None; None |] in
  let result =
    Mrsl.Workload.run
      ~config:{ burn_in = 5; samples = 50 }
      (rng ()) s
      [ tup; Array.copy tup; Array.copy tup ]
  in
  Alcotest.(check int) "one estimate for duplicates" 1
    (List.length result.estimates)

let test_workload_empty () =
  let model = trained_model () in
  let s = Mrsl.Gibbs.sampler model in
  let result = Mrsl.Workload.run (rng ()) s [] in
  Alcotest.(check int) "no estimates" 0 (List.length result.estimates);
  Alcotest.(check int) "no sweeps" 0 result.stats.sweeps

let test_workload_all_at_a_time_cap () =
  (* With a tiny max_draws, rare-evidence tuples fall back to direct
     chains but still receive estimates. *)
  let model = trained_model () in
  let s = Mrsl.Gibbs.sampler model in
  let result =
    Mrsl.Workload.run
      ~config:{ burn_in = 5; samples = 100 }
      ~strategy:Mrsl.Workload.All_at_a_time ~max_draws:10 (rng ()) s
      (small_workload ())
  in
  Alcotest.(check int) "all estimated despite cap" 5
    (List.length result.estimates);
  List.iter
    (fun (_, (est : Mrsl.Gibbs.estimate)) ->
      Alcotest.(check bool) "has samples" true (est.samples_used > 0))
    result.estimates

(* Property: tuple-DAG roots are exactly the nodes nothing else subsumes. *)
let prop_dag_roots_unsubsumed =
  qcheck ~count:60 "DAG roots are unsubsumed"
    QCheck2.Gen.(int_range 0 1000)
    (fun seed ->
      let r = Prob.Rng.create seed in
      let workload =
        List.init 12 (fun _ ->
            let tup =
              Array.init 3 (fun _ ->
                  if Prob.Rng.bool r then Some (Prob.Rng.int r 2) else None)
            in
            if Relation.Tuple.is_complete tup then tup.(0) <- None;
            tup)
      in
      let dag = Mrsl.Tuple_dag.build workload in
      let tuples = Mrsl.Tuple_dag.tuples dag in
      List.for_all
        (fun i ->
          not
            (Array.exists
               (fun other -> Relation.Tuple.subsumes other tuples.(i))
               tuples))
        (Mrsl.Tuple_dag.roots dag))

(* Property: sharing only ever delivers matching samples, so every strategy
   produces estimates concentrated on completions consistent with the
   tuple's evidence. *)
let prop_estimates_respect_evidence =
  qcheck ~count:20 "estimates respect evidence"
    QCheck2.Gen.(int_range 0 100)
    (fun seed ->
      let model = trained_model () in
      let s = Mrsl.Gibbs.sampler model in
      let result =
        Mrsl.Workload.run
          ~config:{ burn_in = 5; samples = 60 }
          ~strategy:Mrsl.Workload.Tuple_dag (Prob.Rng.create seed) s
          (small_workload ())
      in
      List.for_all
        (fun ((tup : Relation.Tuple.t), (est : Mrsl.Gibbs.estimate)) ->
          (* The estimate's missing set must be exactly the tuple's. *)
          est.missing = Relation.Tuple.missing tup)
        result.estimates)

let suite =
  [
    ("sampler conditional = Algorithm 2", `Quick,
     test_sampler_conditional_matches_infer);
    ("sampler memoization", `Quick, test_sampler_memo_hits);
    ("memo distinguishes states", `Quick, test_sampler_memo_distinguishes_states);
    ("conditional ignores own slot", `Quick, test_conditional_ignores_own_slot);
    ("chain keeps evidence fixed", `Quick, test_chain_keeps_evidence_fixed);
    ("chain rejects complete tuples", `Quick, test_chain_rejects_complete);
    ("estimate from points", `Quick, test_estimate_of_points);
    ("estimate marginal", `Quick, test_estimate_marginal);
    ("gibbs recovers dependency", `Quick, test_gibbs_recovers_dependency);
    ("gibbs matches exact posterior", `Slow,
     test_gibbs_matches_exact_posterior_on_bn);
    ("gibbs deterministic by seed", `Quick, test_gibbs_run_deterministic);
    ("tuple DAG reproduces Fig 3", `Quick, test_tuple_dag_fig3_structure);
    ("tuple DAG dedup", `Quick, test_tuple_dag_dedup);
    ("tuple DAG Hasse reduction", `Quick, test_tuple_dag_hasse_reduction);
    ("tuple DAG rejects complete", `Quick, test_tuple_dag_rejects_complete);
    ("tuple DAG empty workload", `Quick, test_tuple_dag_empty);
    ("workload covers all tuples", `Quick, test_workload_covers_all_tuples);
    ("tuple-at-a-time accounting", `Quick,
     test_workload_tuple_at_a_time_accounting);
    ("tuple-DAG is cheaper", `Quick, test_workload_dag_cheaper);
    ("strategies agree (Section VI-D)", `Quick, test_workload_strategies_agree);
    ("workload dedups", `Quick, test_workload_dedups);
    ("workload empty", `Quick, test_workload_empty);
    ("all-at-a-time honors cap", `Quick, test_workload_all_at_a_time_cap);
    prop_dag_roots_unsubsumed;
    prop_estimates_respect_evidence;
  ]

(* Parallel workload inference *)

(* A noisy a0 -> a1 dependency (25% flips) mixes fast even for the fully
   unknown tuple t*, so accuracy parity between two independent samplers
   is a sound assertion. (With the hard a1 = a0 dependency of
   [trained_model], the t* chain is bimodal and mode-sticky: two runs
   with different RNG streams legitimately land in different modes, and
   any TV-based parity test only passes when the streams coincide.) *)
let mixing_model () =
  let points =
    Array.init 600 (fun i ->
        let a0 = i mod 2 in
        let a1 = if i mod 3 = 1 then 1 - a0 else a0 in
        [| a0; a1; i / 2 mod 2 |])
  in
  Mrsl.Model.learn_points
    ~params:{ Mrsl.Model.default_params with support_threshold = 0.01 }
    dependent_schema points

let test_parallel_covers_and_agrees () =
  let model = mixing_model () in
  let workload = small_workload () in
  let config = { Mrsl.Gibbs.burn_in = 50; samples = 1500 } in
  let result = Mrsl.Parallel.run ~config ~domains:3 ~seed:5 model workload in
  Alcotest.(check int) "all tuples estimated" 5 (List.length result.estimates);
  (* Accuracy parity with a sequential run (within sampling noise). *)
  let sampler = Mrsl.Gibbs.sampler model in
  let sequential =
    Mrsl.Workload.run ~config (Prob.Rng.create 5) sampler workload
  in
  let tv = Experiments.Framework.joint_agreement sequential result in
  if tv > 0.15 then Alcotest.failf "parallel estimates diverge: TV %f" tv

let test_parallel_deterministic () =
  let model = trained_model () in
  let run () =
    Mrsl.Parallel.run
      ~config:{ burn_in = 10; samples = 100 }
      ~domains:2 ~seed:9 model (small_workload ())
  in
  let a = run () and b = run () in
  List.iter2
    (fun (_, (ea : Mrsl.Gibbs.estimate)) (_, (eb : Mrsl.Gibbs.estimate)) ->
      check_float "same seed, same estimates"
        (Prob.Dist.prob ea.joint 0)
        (Prob.Dist.prob eb.joint 0))
    a.estimates b.estimates

let test_parallel_single_domain_matches_sequential_shape () =
  let model = trained_model () in
  let result =
    Mrsl.Parallel.run
      ~config:{ burn_in = 10; samples = 50 }
      ~domains:1 ~seed:2 model (small_workload ())
  in
  Alcotest.(check int) "estimates" 5 (List.length result.estimates);
  Alcotest.(check bool) "sweeps counted" true (result.stats.sweeps > 0)

let test_parallel_rejects_bad_domains () =
  let model = trained_model () in
  Alcotest.check_raises "domains 0"
    (Invalid_argument "Parallel.run: domains must be >= 1") (fun () ->
      ignore
        (Mrsl.Parallel.run ~domains:0 ~seed:1 model (small_workload ())))

(* The work-stealing scheduler's core guarantee: per-task RNG streams
   seeded by stable node identity + pull-based donation make the result a
   pure function of (seed, workload) — the domain count and the steal
   interleaving must not leak into a single probability. *)
let test_parallel_bit_identical_across_domains () =
  let model = trained_model () in
  let workload = small_workload () in
  let run domains =
    Mrsl.Parallel.run
      ~config:{ burn_in = 20; samples = 200 }
      ~domains ~seed:17 model workload
  in
  let reference = run 1 in
  List.iter
    (fun domains ->
      let result = run domains in
      Alcotest.(check int)
        (Printf.sprintf "domains:%d sweeps" domains)
        reference.stats.sweeps result.stats.sweeps;
      Alcotest.(check int)
        (Printf.sprintf "domains:%d recorded" domains)
        reference.stats.recorded result.stats.recorded;
      Alcotest.(check int)
        (Printf.sprintf "domains:%d shared" domains)
        reference.stats.shared result.stats.shared;
      List.iter2
        (fun (ta, (ea : Mrsl.Gibbs.estimate)) (tb, (eb : Mrsl.Gibbs.estimate)) ->
          Alcotest.(check bool) "same tuple order" true (ta = tb);
          Alcotest.(check int) "same sample count" ea.samples_used
            eb.samples_used;
          let total = Relation.Domain.count ea.cards in
          for code = 0 to total - 1 do
            (* bit-identical, not approximately equal *)
            Alcotest.(check (float 0.))
              (Printf.sprintf "domains:%d joint[%d]" domains code)
              (Prob.Dist.prob ea.joint code)
              (Prob.Dist.prob eb.joint code)
          done)
        reference.estimates result.estimates)
    [ 2; 4 ]

(* Bucket-emptying must not shift seed streams: with the old
   bucket-indexed seeding, estimates changed when a partition bucket
   drained. Task seeds now derive from DAG node identity, so adding an
   unrelated tuple to the workload must not perturb the others'
   estimates... it does change the DAG, so instead assert the documented
   invariant directly: same seed + same workload = same estimates even
   when the requested domain count exceeds the node count (forcing empty
   deques, the analogue of empty buckets). *)
let test_parallel_seed_stable_under_empty_deques () =
  let model = trained_model () in
  let workload = small_workload () in
  let run domains =
    Mrsl.Parallel.run
      ~config:{ burn_in = 10; samples = 100 }
      ~domains ~seed:23 model workload
  in
  let a = run 5 (* capped to 5 nodes *) and b = run 64 (* heavily over-asked *) in
  List.iter2
    (fun (_, (ea : Mrsl.Gibbs.estimate)) (_, (eb : Mrsl.Gibbs.estimate)) ->
      check_float "over-asked domains leave estimates unchanged"
        (Prob.Dist.prob ea.joint 0)
        (Prob.Dist.prob eb.joint 0))
    a.estimates b.estimates

let test_parallel_strategy_tuple_at_a_time () =
  let model = trained_model () in
  let result =
    Mrsl.Parallel.run
      ~config:{ burn_in = 10; samples = 50 }
      ~strategy:Mrsl.Workload.Tuple_at_a_time ~domains:2 ~seed:11 model
      (small_workload ())
  in
  Alcotest.(check int) "all estimated" 5 (List.length result.estimates);
  Alcotest.(check int) "no sharing without DAG edges" 0 result.stats.shared

let test_parallel_telemetry_counters () =
  let model = trained_model () in
  let telemetry = Mrsl.Telemetry.create () in
  let _ =
    Mrsl.Parallel.run
      ~config:{ burn_in = 5; samples = 40 }
      ~domains:2 ~telemetry ~seed:3 model (small_workload ())
  in
  (* Subsumees can complete purely on donated samples without ever
     becoming tasks, so the task count is 1..nodes, not exactly nodes. *)
  let tasks = Mrsl.Telemetry.counter telemetry "parallel.tasks" in
  Alcotest.(check bool) "tasks counted" true (tasks >= 1 && tasks <= 5);
  Alcotest.(check bool)
    "sweeps counted" true
    (Mrsl.Telemetry.counter telemetry "parallel.sweeps" > 0);
  match Mrsl.Telemetry.gauge_value telemetry "parallel.domains" with
  | Some d -> Alcotest.(check (float 0.)) "domains gauge" 2. d
  | None -> Alcotest.fail "parallel.domains gauge missing"

let suite =
  suite
  @ [
      ("parallel covers and agrees", `Quick, test_parallel_covers_and_agrees);
      ("parallel deterministic", `Quick, test_parallel_deterministic);
      ("parallel single domain", `Quick,
       test_parallel_single_domain_matches_sequential_shape);
      ("parallel rejects bad domains", `Quick, test_parallel_rejects_bad_domains);
      ("parallel bit-identical across domains", `Quick,
       test_parallel_bit_identical_across_domains);
      ("parallel seed stable under empty deques", `Quick,
       test_parallel_seed_stable_under_empty_deques);
      ("parallel tuple-at-a-time strategy", `Quick,
       test_parallel_strategy_tuple_at_a_time);
      ("parallel telemetry counters", `Quick, test_parallel_telemetry_counters);
    ]
