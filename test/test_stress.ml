(* Stress and alternate-path tests: wide schemas (candidate-scan Apriori,
   memo-disabled Gibbs), the full 20-network catalog end-to-end, deep
   subsumption chains, and CSV fuzzing. *)

open Helpers

let test_apriori_wide_arity_candidate_scan () =
  (* 24 attributes: enumerating C(24, k) subsets per point is costlier than
     scanning candidates, forcing the candidate-scan branch. Supports must
     still match brute force. *)
  let r = rng () in
  let arity = 24 in
  let points =
    Array.init 300 (fun _ -> Array.init arity (fun _ -> Prob.Rng.int r 2))
  in
  let result =
    Mining.Apriori.mine
      ~config:{ threshold = 0.35; max_itemsets = 2000 }
      ~cards:(Array.make arity 2) points
  in
  let brute s =
    let hits =
      Array.fold_left
        (fun acc p -> if Mining.Itemset.matches_point s p then acc + 1 else acc)
        0 points
    in
    float_of_int hits /. float_of_int (Array.length points)
  in
  Alcotest.(check bool) "found itemsets" true (Mining.Apriori.count result > 0);
  List.iter
    (fun (s, supp) -> check_float "wide-arity support" (brute s) supp)
    (Mining.Apriori.frequent result)

let test_gibbs_memo_disabled_on_huge_domain () =
  (* 30 attributes of cardinality 3: domain 3^30 ≈ 2e14 > 2^40 threshold?
     3^30 ≈ 2.06e14, and 2^40 ≈ 1.1e12, so the memo must be disabled. *)
  let arity = 30 in
  let r = rng () in
  let schema = Relation.Schema.of_cardinalities (List.init arity (fun _ -> 3)) in
  let points =
    Array.init 200 (fun _ -> Array.init arity (fun _ -> Prob.Rng.int r 3))
  in
  let model =
    Mrsl.Model.learn_points
      ~params:{ Mrsl.Model.default_params with support_threshold = 0.3 }
      schema points
  in
  let sampler = Mrsl.Gibbs.sampler model in
  let point = Array.init arity (fun _ -> 0) in
  ignore (Mrsl.Gibbs.conditional sampler point 0);
  ignore (Mrsl.Gibbs.conditional sampler point 0);
  let hits, misses = Mrsl.Gibbs.cache_stats sampler in
  Alcotest.(check int) "no cache hits" 0 hits;
  Alcotest.(check int) "no cache misses" 0 misses;
  (* Inference still works end-to-end. *)
  let tup = Array.init arity (fun i -> if i < 2 then None else Some 0) in
  let est =
    Mrsl.Gibbs.run ~config:{ burn_in = 5; samples = 50 } r sampler tup
  in
  check_dist_sums_to_one "estimate valid" est.joint

let test_catalog_end_to_end () =
  (* Every one of the 20 networks goes through generate → sample → learn →
     single-attribute inference; a broad integration sweep. *)
  List.iter
    (fun (entry : Bayesnet.Catalog.entry) ->
      let r = Prob.Rng.create 99 in
      let net = Bayesnet.Network.generate r entry.topology in
      let data = Bayesnet.Network.sample_instance r net 400 in
      let model =
        Mrsl.Model.learn
          ~params:{ Mrsl.Model.default_params with support_threshold = 0.05 }
          data
      in
      let tup = Relation.Tuple.of_point (Bayesnet.Network.sample_point r net) in
      tup.(0) <- None;
      let d = Mrsl.Infer_single.infer model tup 0 in
      check_dist_sums_to_one (entry.id ^ " estimate") d;
      check_dist_positive (entry.id ^ " positive") d)
    Bayesnet.Catalog.all

let test_deep_subsumption_chain_workload () =
  (* t* ≻ {a0} ≻ {a0,a1} ≻ {a0,a1,a2} ≻ {a0,a1,a2,a3}: a 5-level chain.
     Sharing must cascade and every node must reach the target count. *)
  let arity = 5 in
  let schema = Relation.Schema.of_cardinalities (List.init arity (fun _ -> 2)) in
  let r = rng () in
  let points =
    Array.init 300 (fun _ -> Array.init arity (fun _ -> Prob.Rng.int r 2))
  in
  let model =
    Mrsl.Model.learn_points
      ~params:{ Mrsl.Model.default_params with support_threshold = 0.05 }
      schema points
  in
  let workload =
    List.init arity (fun k ->
        (* k known attributes (all value 0), rest missing. *)
        Array.init arity (fun i -> if i < k then Some 0 else None))
  in
  let dag = Mrsl.Tuple_dag.build workload in
  (* The chain must be a path: one root, each node one child. *)
  Alcotest.(check int) "single root" 1 (List.length (Mrsl.Tuple_dag.roots dag));
  Alcotest.(check int) "path edges" (arity - 1) (Mrsl.Tuple_dag.edge_count dag);
  let sampler = Mrsl.Gibbs.sampler model in
  let result =
    Mrsl.Workload.run
      ~config:{ burn_in = 10; samples = 120 }
      ~strategy:Mrsl.Workload.Tuple_dag r sampler workload
  in
  Alcotest.(check int) "all nodes estimated" arity
    (List.length result.estimates);
  List.iter
    (fun (_, (est : Mrsl.Gibbs.estimate)) ->
      Alcotest.(check bool) "reached target" true (est.samples_used >= 120))
    result.estimates;
  Alcotest.(check bool) "sharing happened" true (result.stats.shared > 0)

let test_workload_star_tuple_donates_to_all () =
  (* When t* (everything missing) is in the workload, every other node is
     its descendant and receives matching samples. *)
  let model = Mrsl.Model.learn_points dependent_schema (dependent_points 300) in
  let sampler = Mrsl.Gibbs.sampler model in
  let workload : Relation.Tuple.t list =
    [ [| None; None; None |]; [| Some 0; None; None |]; [| None; Some 1; None |] ]
  in
  let result =
    Mrsl.Workload.run
      ~config:{ burn_in = 10; samples = 100 }
      ~strategy:Mrsl.Workload.Tuple_dag (rng ()) sampler workload
  in
  Alcotest.(check bool) "samples shared from t*" true (result.stats.shared > 0);
  Alcotest.(check int) "all estimated" 3 (List.length result.estimates)

let test_csv_fuzz_roundtrip () =
  (* Random relations with random labels (including separators and quotes)
     survive write → read. *)
  let r = rng () in
  for _ = 1 to 25 do
    let arity = 1 + Prob.Rng.int r 4 in
    let label () =
      let pool = [| "a"; "b,c"; "d\"e"; "f g"; "héllo"; "0"; "-1.5" |] in
      pool.(Prob.Rng.int r (Array.length pool))
    in
    let attrs =
      List.init arity (fun i ->
          (* Distinct labels per attribute. *)
          let rec build n acc =
            if n = 0 then acc
            else
              let l = label () in
              if List.mem l acc then build n acc else build (n - 1) (l :: acc)
          in
          Relation.Attribute.make
            ("col" ^ string_of_int i)
            (build (2 + Prob.Rng.int r 2) []))
    in
    let schema = Relation.Schema.make attrs in
    let tuples =
      List.init (5 + Prob.Rng.int r 10) (fun _ ->
          Array.init arity (fun a ->
              if Prob.Rng.float r < 0.2 then None
              else Some (Prob.Rng.int r (Relation.Schema.cardinality schema a))))
    in
    let inst = Relation.Instance.make schema tuples in
    let text = Relation.Csv_io.write_string inst in
    let back = Relation.Csv_io.read_string ~schema text in
    Alcotest.(check int) "size" (Relation.Instance.size inst)
      (Relation.Instance.size back);
    Array.iteri
      (fun i tup ->
        Alcotest.(check bool) "tuples preserved" true
          (Relation.Tuple.equal tup (Relation.Instance.tuples back).(i)))
      (Relation.Instance.tuples inst)
  done

let test_bn7_large_domain_pipeline () =
  (* BN7's 518,400-value joint domain stresses the mixed-radix paths. *)
  let entry = Bayesnet.Catalog.find "BN7" in
  let r = rng () in
  let net = Bayesnet.Network.generate r entry.topology in
  let data = Bayesnet.Network.sample_instance r net 500 in
  let model =
    Mrsl.Model.learn
      ~params:{ Mrsl.Model.default_params with support_threshold = 0.05 }
      data
  in
  let sampler = Mrsl.Gibbs.sampler model in
  let tup = Relation.Tuple.of_point (Bayesnet.Network.sample_point r net) in
  tup.(3) <- None;
  tup.(7) <- None;
  let est = Mrsl.Gibbs.run ~config:{ burn_in = 10; samples = 100 } r sampler tup in
  check_dist_sums_to_one "BN7 estimate" est.joint;
  let _, truth = Bayesnet.Network.posterior_joint net tup in
  Alcotest.(check int) "domain sizes agree" (Prob.Dist.size truth)
    (Prob.Dist.size est.joint)

let test_wsdeque_length_race_free () =
  (* Regression: [Mrsl.Wsdeque.length] used to read the size field outside
     the mutex — an unsynchronized racy read under the OCaml 5 memory
     model. It is now an atomic counter maintained inside the locked
     sections. Hammer one deque from an owner domain (push/pop) and
     thief domains (steal) while other domains poll [length]: every
     observed snapshot must be a plausible queue size (never negative,
     never above the total pushed), and conservation must hold exactly
     at the end. *)
  let d : int Mrsl.Wsdeque.t = Mrsl.Wsdeque.create () in
  let total = 20_000 in
  let popped = Atomic.make 0 and stolen = Atomic.make 0 in
  let bad_snapshots = Atomic.make 0 in
  let stop = Atomic.make false in
  let owner () =
    for i = 1 to total do
      Mrsl.Wsdeque.push d i;
      if i land 3 = 0 then
        match Mrsl.Wsdeque.pop d with
        | Some _ -> Atomic.incr popped
        | None -> ()
    done;
    Atomic.set stop true
  in
  let thief () =
    while not (Atomic.get stop) do
      match Mrsl.Wsdeque.steal d with
      | Some _ -> Atomic.incr stolen
      | None -> Domain.cpu_relax ()
    done
  in
  let poller () =
    while not (Atomic.get stop) do
      let n = Mrsl.Wsdeque.length d in
      if n < 0 || n > total then Atomic.incr bad_snapshots;
      Domain.cpu_relax ()
    done
  in
  let domains =
    [ Domain.spawn owner; Domain.spawn thief; Domain.spawn thief;
      Domain.spawn poller; Domain.spawn poller ]
  in
  List.iter Domain.join domains;
  (* Drain what is left and check conservation. *)
  let rec drain acc =
    match Mrsl.Wsdeque.steal d with Some _ -> drain (acc + 1) | None -> acc
  in
  let leftover = drain 0 in
  Alcotest.(check int) "no out-of-range length snapshots" 0
    (Atomic.get bad_snapshots);
  Alcotest.(check int) "conservation" total
    (Atomic.get popped + Atomic.get stolen + leftover);
  Alcotest.(check int) "empty after drain" 0 (Mrsl.Wsdeque.length d)

let test_model_many_values_smoothing () =
  (* Cardinality-10 attribute with a skewed marginal: the smoothed root
     still sums to 1 and keeps every value positive. *)
  let schema = Relation.Schema.of_cardinalities [ 10; 2 ] in
  let r = rng () in
  let points =
    Array.init 500 (fun _ ->
        [| (if Prob.Rng.float r < 0.9 then 0 else 1 + Prob.Rng.int r 9);
           Prob.Rng.int r 2 |])
  in
  let model =
    Mrsl.Model.learn_points
      ~params:{ Mrsl.Model.default_params with support_threshold = 0.02 }
      schema points
  in
  let root = Mrsl.Lattice.root (Mrsl.Model.lattice model 0) in
  check_dist_sums_to_one "skewed root" root.cpd;
  check_dist_positive "skewed root positive" root.cpd;
  Alcotest.(check int) "mode is the frequent value" 0 (Prob.Dist.mode root.cpd)

let suite =
  [
    ("apriori wide arity (candidate scan)", `Quick,
     test_apriori_wide_arity_candidate_scan);
    ("gibbs memo disabled on huge domains", `Quick,
     test_gibbs_memo_disabled_on_huge_domain);
    ("all 20 catalog networks end-to-end", `Slow, test_catalog_end_to_end);
    ("deep subsumption chain workload", `Quick,
     test_deep_subsumption_chain_workload);
    ("star tuple donates to all", `Quick, test_workload_star_tuple_donates_to_all);
    ("csv fuzz roundtrip", `Quick, test_csv_fuzz_roundtrip);
    ("wsdeque length race-free", `Quick, test_wsdeque_length_race_free);
    ("BN7 large-domain pipeline", `Slow, test_bn7_large_domain_pipeline);
    ("high-cardinality smoothing", `Quick, test_model_many_values_smoothing);
  ]
