(* Tests for the event-level tracing subsystem (Mrsl.Trace): sink
   lifecycle, bounded buffers with drop counting, deterministic flow
   ids, Chrome trace-event export (and its re-parseability), Prometheus
   exposition, and the observation-only guarantee — a traced parallel
   run must be bit-identical to an untraced one. *)

open Helpers
module Tr = Mrsl.Trace
module Json = Mrsl.Telemetry.Json

(* Make sure a failed test never leaks an installed sink into the rest
   of the suite. *)
let with_fresh_sink ?capacity_per_domain f =
  let sink = Tr.create ?capacity_per_domain () in
  Tr.install sink;
  Fun.protect ~finally:(fun () -> ignore (Tr.uninstall ())) (fun () -> f sink)

let test_disabled_is_noop () =
  Alcotest.(check bool) "no sink installed" false (Tr.enabled ());
  (* All emission helpers must be silent no-ops without a sink. *)
  Tr.instant ~cat:"gibbs" "nothing";
  Tr.counter ~cat:"gibbs" "nothing" [ ("x", 1.) ];
  Tr.flow_start ~cat:"sched" ~id:7 "nothing";
  Tr.flow_end ~cat:"sched" ~id:7 "nothing";
  Alcotest.(check int) "complete still runs f" 41
    (Tr.complete ~cat:"gibbs" "nothing" (fun () -> 41));
  Alcotest.(check bool) "still disabled" false (Tr.enabled ())

let test_sink_captures_events () =
  let sink =
    with_fresh_sink (fun sink ->
        Alcotest.(check bool) "enabled" true (Tr.enabled ());
        Tr.instant ~cat:"io" "a";
        Tr.counter ~cat:"gibbs" "conv" [ ("rhat", 1.01); ("ess", 42.) ];
        ignore (Tr.complete ~cat:"mine" "slice" (fun () -> Sys.opaque_identity 1));
        Tr.flow_start ~cat:"steal" ~id:99 "steal";
        Tr.flow_end ~cat:"steal" ~id:99 "steal";
        sink)
  in
  Alcotest.(check int) "five events" 5 (Tr.event_count sink);
  Alcotest.(check int) "no drops" 0 (Tr.dropped sink);
  let evs = Tr.events sink in
  (* sorted by timestamp *)
  let rec sorted = function
    | (a : Tr.event) :: (b :: _ as tl) -> a.ts_ns <= b.ts_ns && sorted tl
    | _ -> true
  in
  Alcotest.(check bool) "sorted by ts" true (sorted evs);
  let phase_of name =
    (List.find (fun (e : Tr.event) -> e.name = name) evs).phase
  in
  (match phase_of "slice" with
  | Tr.Complete d -> Alcotest.(check bool) "duration >= 0" true (d >= 0)
  | _ -> Alcotest.fail "complete slice phase");
  Alcotest.(check bool) "instant" true (phase_of "a" = Tr.Instant);
  Alcotest.(check bool) "counter" true (phase_of "conv" = Tr.Counter);
  let flows =
    List.filter (fun (e : Tr.event) -> e.cat = "steal") evs
    |> List.map (fun (e : Tr.event) -> (e.phase, e.id))
  in
  Alcotest.(check bool) "flow pair carries the id" true
    (List.mem (Tr.Flow_start, 99) flows && List.mem (Tr.Flow_end, 99) flows)

let test_overflow_drops_counted () =
  let sink =
    with_fresh_sink ~capacity_per_domain:8 (fun sink ->
        for i = 1 to 100 do
          Tr.instant ~cat:"io" (string_of_int i)
        done;
        sink)
  in
  Alcotest.(check int) "ring keeps capacity" 8 (Tr.event_count sink);
  Alcotest.(check int) "drops counted, not resized" 92 (Tr.dropped sink)

let test_uninstall_returns_sink () =
  let sink = Tr.create () in
  Tr.install sink;
  Tr.instant ~cat:"io" "x";
  (match Tr.uninstall () with
  | Some s -> Alcotest.(check int) "same sink back" 1 (Tr.event_count s)
  | None -> Alcotest.fail "uninstall lost the sink");
  Alcotest.(check bool) "disabled after uninstall" false (Tr.enabled ())

let test_flow_ids_deterministic () =
  let a = Tr.task_flow_id ~seed:17 ~node:3 in
  Alcotest.(check bool) "stable" true (a = Tr.task_flow_id ~seed:17 ~node:3);
  Alcotest.(check bool) "nonzero" true (a <> 0);
  Alcotest.(check bool) "node-sensitive" true
    (a <> Tr.task_flow_id ~seed:17 ~node:4);
  Alcotest.(check bool) "seed-sensitive" true
    (a <> Tr.task_flow_id ~seed:18 ~node:3);
  Alcotest.(check bool) "kind-sensitive (task vs steal)" true
    (a <> Tr.steal_flow_id ~seed:17 ~node:3);
  Alcotest.(check bool) "share ids distinct" true
    (Tr.share_flow_id ~seed:17 ~parent:1 ~child:2
    <> Tr.share_flow_id ~seed:17 ~parent:2 ~child:1)

let test_chrome_export_reparses () =
  let sink =
    with_fresh_sink (fun sink ->
        Tr.instant ~cat:"io" "a";
        ignore (Tr.complete ~cat:"mine" "m" (fun () -> ()));
        Tr.counter ~cat:"gibbs" "gibbs.convergence" [ ("rhat", 1.2) ];
        Tr.flow_start ~cat:"steal" ~id:5 "steal";
        Tr.flow_end ~cat:"steal" ~id:5 "steal";
        sink)
  in
  let json = Json.of_string (Tr.chrome_string sink) in
  (match Json.member "traceEvents" json with
  | Some (Json.List evs) ->
      (* every retained event plus >= 1 metadata record *)
      Alcotest.(check bool) "events + metadata" true
        (List.length evs >= Tr.event_count sink + 1);
      let phases =
        List.filter_map
          (fun e ->
            match Json.member "ph" e with
            | Some (Json.String p) -> Some p
            | _ -> None)
          evs
      in
      List.iter
        (fun p ->
          Alcotest.(check bool) ("phase " ^ p) true (List.mem p phases))
        [ "M"; "X"; "i"; "C"; "s"; "f" ]
  | _ -> Alcotest.fail "no traceEvents");
  (match Json.member "dropped" json with
  | Some (Json.Int 0) -> ()
  | _ -> Alcotest.fail "dropped field");
  (* the summarizer accepts its own export *)
  let summary = Tr.summarize json in
  Alcotest.(check bool) "summary mentions tracks" true
    (Astring_like.contains summary "tracks:");
  Alcotest.check_raises "summarize rejects non-traces"
    (Invalid_argument "Trace.summarize: no traceEvents array") (fun () ->
      ignore (Tr.summarize (Json.Obj [ ("x", Json.Int 1) ])))

(* Property: whatever mix of events a run emits, the Chrome export is
   valid JSON that re-parses with the project's own parser (satellite:
   every exported Perfetto trace re-parses with Json.of_string). *)
let prop_chrome_export_reparses =
  qcheck ~count:60 "chrome export re-parses"
    QCheck2.Gen.(list_size (int_range 0 60) (int_range 0 5))
    (fun kinds ->
      let sink =
        with_fresh_sink ~capacity_per_domain:64 (fun sink ->
            List.iteri
              (fun i kind ->
                match kind with
                | 0 -> Tr.instant ~cat:"io" (Printf.sprintf "i\"\n%d" i)
                | 1 ->
                    Tr.counter ~cat:"gibbs" "conv"
                      [ ("rhat", Float.of_int i); ("nan", Float.nan) ]
                | 2 ->
                    ignore
                      (Tr.complete ~cat:"mine"
                         ~args:[ ("s", Tr.Str "x\tq"); ("n", Tr.Int i) ]
                         "slice"
                         (fun () -> ()))
                | 3 -> Tr.flow_start ~cat:"steal" ~id:(i + 1) "steal"
                | 4 -> Tr.flow_end ~cat:"steal" ~id:(i + 1) "steal"
                | _ ->
                    Tr.complete_span ~cat:"sched"
                      ~start_ns:(Mrsl.Clock.now_ns ()) "span")
              kinds;
            sink)
      in
      let json = Json.of_string (Tr.chrome_string sink) in
      match Json.member "traceEvents" json with
      | Some (Json.List _) -> true
      | _ -> false)

let test_prometheus_exposition () =
  let t = Mrsl.Telemetry.create () in
  Mrsl.Telemetry.incr ~by:3 t "parallel.steals";
  Mrsl.Telemetry.gauge t "parallel.domains" 4.;
  List.iter (Mrsl.Telemetry.observe t "gibbs.memo_hit_rate") [ 0.5; 0.25 ];
  ignore (Mrsl.Telemetry.span t "workload.run" (fun () -> ()));
  let text = Tr.prometheus_exposition t in
  List.iter
    (fun needle ->
      Alcotest.(check bool) needle true
        (Astring_like.contains text needle))
    [
      "# TYPE mrsl_parallel_steals_total counter";
      "mrsl_parallel_steals_total 3";
      "mrsl_parallel_domains 4";
      "mrsl_gibbs_memo_hit_rate{quantile=\"0.5\"}";
      "mrsl_gibbs_memo_hit_rate_count 2";
      "mrsl_workload_run_calls_total 1";
      "mrsl_workload_run_seconds_total";
    ];
  (* names are sanitized: no dots survive into metric names *)
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         if String.length line > 0 && line.[0] <> '#' then
           match String.index_opt line ' ' with
           | Some i ->
               let name = String.sub line 0 i in
               (* labels like {quantile="0.5"} may contain dots; only the
                  metric name itself must be sanitized *)
               let name =
                 match String.index_opt name '{' with
                 | Some b -> String.sub name 0 b
                 | None -> name
               in
               String.iter
                 (fun c ->
                   if c = '.' then
                     Alcotest.failf "unsanitized metric name %S" name)
                 name
           | None -> ())

(* --- observation-only: tracing must not change inference ------------- *)

let trace_model () =
  Mrsl.Model.learn_points
    ~params:{ Mrsl.Model.default_params with support_threshold = 0.01 }
    dependent_schema (dependent_points 400)

let trace_workload () =
  [
    [| None; Some 0; Some 0 |];
    [| Some 1; None; Some 1 |];
    [| None; None; Some 0 |];
    [| Some 0; Some 0; None |];
    [| None; None; None |];
    [| Some 1; None; None |];
  ]

let joints (result : Mrsl.Workload.result) =
  List.map
    (fun (_, (e : Mrsl.Gibbs.estimate)) -> Prob.Dist.to_array e.joint)
    result.estimates

let test_traced_run_bit_identical () =
  let model = trace_model () in
  let workload = trace_workload () in
  let run () =
    Mrsl.Parallel.run
      ~config:{ burn_in = 20; samples = 120 }
      ~domains:4 ~seed:23 model workload
  in
  let untraced = run () in
  let traced, sink =
    let sink = Tr.create () in
    Tr.install sink;
    Fun.protect ~finally:(fun () -> ignore (Tr.uninstall ()))
      (fun () -> (run (), sink))
  in
  Alcotest.(check bool) "trace captured something" true
    (Tr.event_count sink > 0);
  List.iter2
    (fun a b ->
      Alcotest.(check (array (float 0.))) "identical joint" a b)
    (joints untraced) (joints traced);
  Alcotest.(check int) "identical sweep count" untraced.stats.sweeps
    traced.stats.sweeps

let test_traced_run_has_scheduler_events () =
  let model = trace_model () in
  let workload = trace_workload () in
  let sink =
    with_fresh_sink (fun sink ->
        ignore
          (Mrsl.Parallel.run
             ~config:{ burn_in = 10; samples = 80 }
             ~domains:2 ~seed:5 model workload);
        sink)
  in
  let evs = Tr.events sink in
  let has ?phase cat name =
    List.exists
      (fun (e : Tr.event) ->
        e.cat = cat && e.name = name
        && match phase with None -> true | Some p -> p e.phase)
      evs
  in
  Alcotest.(check bool) "parallel.run slice" true
    (has "sched" "parallel.run");
  Alcotest.(check bool) "dag.build slice" true (has "dag" "dag.build");
  Alcotest.(check bool) "per-task slices" true (has "gibbs" "parallel.task");
  Alcotest.(check bool) "chain-init voting slices" true
    (has "voting" "gibbs.chain_init");
  Alcotest.(check bool) "task flow starts" true
    (has "sched" "task.run"
       ~phase:(function Tr.Flow_start -> true | _ -> false));
  Alcotest.(check bool) "task flow ends" true
    (has "sched" "task.run"
       ~phase:(function Tr.Flow_end -> true | _ -> false));
  Alcotest.(check bool) "convergence timeline counters" true
    (has "gibbs" "gibbs.convergence"
       ~phase:(function Tr.Counter -> true | _ -> false));
  Alcotest.(check int) "nothing dropped" 0 (Tr.dropped sink)

let test_retry_emits_convergence_counters () =
  let model = trace_model () in
  let sampler = Mrsl.Gibbs.sampler model in
  let tup = [| None; Some 0; Some 0 |] in
  let sink =
    with_fresh_sink (fun sink ->
        ignore
          (Mrsl.Diagnostics.run_with_retries
             ~config:{ burn_in = 10; samples = 64 }
             (Prob.Rng.create 3) sampler tup);
        sink)
  in
  let evs = Tr.events sink in
  Alcotest.(check bool) "gibbs.attempt slice" true
    (List.exists
       (fun (e : Tr.event) -> e.cat = "gibbs" && e.name = "gibbs.attempt")
       evs);
  Alcotest.(check bool) "rhat counter present" true
    (List.exists
       (fun (e : Tr.event) ->
         e.name = "gibbs.convergence"
         && List.mem_assoc "rhat" e.args)
       evs)

let suite =
  [
    ("disabled tracing is a no-op", `Quick, test_disabled_is_noop);
    ("sink captures events", `Quick, test_sink_captures_events);
    ("overflow drops are counted", `Quick, test_overflow_drops_counted);
    ("uninstall returns the sink", `Quick, test_uninstall_returns_sink);
    ("flow ids deterministic", `Quick, test_flow_ids_deterministic);
    ("chrome export re-parses", `Quick, test_chrome_export_reparses);
    prop_chrome_export_reparses;
    ("prometheus exposition", `Quick, test_prometheus_exposition);
    ("traced run bit-identical", `Quick, test_traced_run_bit_identical);
    ("traced run has scheduler events", `Quick,
     test_traced_run_has_scheduler_events);
    ("retry emits convergence counters", `Quick,
     test_retry_emits_convergence_counters);
  ]
