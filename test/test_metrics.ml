(* Metrics-catalogue test (observability PR satellite).

   METRICS.md is the authoritative list of every metric and trace-event
   name the codebase emits. This suite fails when a name used in code is
   missing from the document, in two layers:

   - a static half: the known inventory of registry names, trace
     categories, and trace event names (kept in sync with the code by
     review) must each appear verbatim in METRICS.md;
   - a dynamic half: run a small end-to-end pipeline with tracing on and
     assert every name that actually lands in the global registry / the
     trace sink is documented.

   The dune rule declares ../METRICS.md as a test dependency so the file
   is present in the sandboxed test cwd. *)

module T = Mrsl.Telemetry
module Tr = Mrsl.Trace

let metrics_md =
  (* dune runtest runs us in _build/default/test (where the dune rule's
     [deps ../METRICS.md] places the file); a bare [dune exec] runs from
     the project root — accept both. *)
  lazy
    (let candidates = [ "../METRICS.md"; "METRICS.md" ] in
     match List.find_opt Sys.file_exists candidates with
     | Some p -> In_channel.with_open_bin p In_channel.input_all
     | None -> Alcotest.fail "METRICS.md not found next to the test binary")

let documented name =
  (* names appear in backticks in the tables *)
  Astring_like.contains (Lazy.force metrics_md) ("`" ^ name ^ "`")

let check_documented kind name =
  Alcotest.(check bool)
    (Printf.sprintf "%s %S documented in METRICS.md" kind name)
    true (documented name)

(* --- static half ----------------------------------------------------- *)

let registry_names =
  [
    "cache.bytes";
    "cache.dedup_fanout";
    "cache.entries";
    "cache.evictions";
    "cache.hits";
    "cache.lookup_seconds";
    "cache.misses";
    "csv.rows_skipped";
    "degrade.marginal_prior";
    "degrade.nonconverged";
    "degrade.uniform";
    "experiments.timed_seconds";
    "fault.injected.conn_drops";
    "fault.injected.csv_rows";
    "fault.injected.stalled_writes";
    "fault.injected.torn_frames";
    "fault.task_failures";
    "fault.tuples_skipped";
    "fault.upstream_skipped";
    "gc.compactions";
    "gc.major_collections";
    "gc.minor_collections";
    "gibbs.chains";
    "gibbs.checked";
    "gibbs.memo_hit_rate";
    "gibbs.memo_hits";
    "gibbs.memo_misses";
    "gibbs.retries";
    "kernel.compiles";
    "kernel.fallback";
    "kernel.hits";
    "mem.alloc_per_chain_bytes";
    "mem.alloc_per_infer_bytes";
    "mem.allocated_bytes";
    "mem.heap_bytes";
    "mem.promoted_bytes";
    "mem.top_heap_bytes";
    "model.learn";
    "parallel.domains";
    "parallel.queue_depth.max";
    "parallel.run";
    "parallel.shared";
    "parallel.steals";
    "parallel.sweeps";
    "parallel.tasks";
    "quality.brier";
    "quality.cells";
    "quality.confidence";
    "quality.degrade.marginal_prior_share";
    "quality.degrade.uniform_share";
    "quality.drift.alerts";
    "quality.drift.hellinger_max";
    "quality.drift.js_max";
    "quality.ece";
    "quality.log_loss";
    "quality.mce";
    "quality.nonconverged_share";
    "quality.top1_accuracy";
    "quality.voters.count";
    "quality.voters.per_task";
    "quality.voters.root_only";
    "quality.voters.root_only_share";
    "quality.voters.specificity";
    "sched.busy_ns";
    "sched.idle_ns";
    "sched.utilization";
    "serve.access_log_lines";
    "serve.batch";
    "serve.batch_size";
    "serve.batches";
    "serve.compute_seconds";
    "serve.conn_rejected";
    "serve.connections";
    "serve.deadline_exceeded";
    "serve.epoch";
    "serve.errors";
    "serve.flush_wait_seconds";
    "serve.idle_killed";
    "serve.latency_seconds";
    "serve.latency_seconds.cache_hit";
    "serve.latency_seconds.deadline_exceeded";
    "serve.latency_seconds.error";
    "serve.latency_seconds.ok";
    "serve.latency_seconds.shed";
    "serve.metrics_scrapes";
    "serve.out_buf_killed";
    "serve.overloaded";
    "serve.queue_depth";
    "serve.queue_wait_seconds";
    "serve.reloads";
    "serve.requests";
    "serve.shed";
    "workload.recorded";
    "workload.run";
    "workload.shared";
    "workload.sweeps";
    "workload.tuples";
  ]

let trace_categories =
  [
    "cache"; "dag"; "gc"; "gibbs"; "io"; "kernel"; "lattice"; "learn";
    "mine"; "quality"; "sched"; "serve"; "share"; "steal"; "voting";
  ]

let trace_event_names =
  [
    "cache.evict";
    "cache.fill";
    "cache.prewarm";
    "csv.read";
    "dag.build";
    "degrade.marginal_prior";
    "degrade.uniform";
    "gc.major";
    "gibbs.attempt";
    "gibbs.chain_init";
    "gibbs.convergence";
    "kernel.compile";
    "lattice.build";
    "mine.frequent_itemsets";
    "model.learn";
    "parallel.run";
    "parallel.task";
    "pool.reused";
    "quality.drift.alert";
    "quality.scores";
    "quality.shadow_eval";
    "serve.batch";
    "serve.reload";
    "serve.request";
    "serve.request.done";
    "share.donate";
    "steal";
    "task.run";
    "workload.node";
  ]

let test_static_catalogue () =
  List.iter (check_documented "registry name") registry_names;
  List.iter (check_documented "trace category") trace_categories;
  List.iter (check_documented "trace event") trace_event_names

(* --- dynamic half ---------------------------------------------------- *)

let test_runtime_names_documented () =
  (* Exercise learning + parallel inference with tracing enabled, then
     check that whatever names the run actually emitted are in the
     catalogue. The global registry accumulates across the whole test
     binary, so this also covers suites that ran before us. *)
  let sink = Tr.create () in
  Tr.install sink;
  Fun.protect ~finally:(fun () -> ignore (Tr.uninstall ())) @@ fun () ->
  let model =
    Mrsl.Model.learn_points
      ~params:{ Mrsl.Model.default_params with support_threshold = 0.01 }
      Helpers.dependent_schema
      (Helpers.dependent_points 300)
  in
  let workload =
    [
      [| None; Some 0; Some 0 |];
      [| Some 1; None; Some 1 |];
      [| Some 0; Some 0; None |];
      [| None; None; Some 1 |];
    ]
  in
  let _ =
    Mrsl.Parallel.run ~config:{ Mrsl.Gibbs.burn_in = 10; samples = 40 }
      ~domains:2 ~seed:7 model workload
  in
  (* registry names *)
  let snapshot = T.to_json T.global in
  let section k =
    match T.Json.member k snapshot with
    | Some (T.Json.Obj kvs) -> List.map fst kvs
    | _ -> []
  in
  List.iter
    (fun sec ->
      List.iter (check_documented ("runtime " ^ sec)) (section sec))
    [ "counters"; "gauges"; "histograms"; "spans" ];
  (* trace categories and event names *)
  let json = T.Json.of_string (Tr.chrome_string sink) in
  (match T.Json.member "traceEvents" json with
  | Some (T.Json.List evs) ->
      Alcotest.(check bool) "trace has events" true (List.length evs > 0);
      List.iter
        (fun ev ->
          match T.Json.member "ph" ev with
          | Some (T.Json.String "M") | None -> ()
          | Some _ ->
              (match T.Json.member "cat" ev with
              | Some (T.Json.String c) -> check_documented "runtime cat" c
              | _ -> ());
              (match T.Json.member "name" ev with
              | Some (T.Json.String n) -> check_documented "runtime event" n
              | _ -> ()))
        evs
  | _ -> Alcotest.fail "no traceEvents in export")

let suite =
  [
    ("static catalogue complete", `Quick, test_static_catalogue);
    ("runtime names documented", `Quick, test_runtime_names_documented);
  ]
