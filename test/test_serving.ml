(* Serving-layer suite (serving daemon PR).

   Everything here drives the daemon's components in-process — protocol
   codec, frame assembly, admission queue, engine batching — without a
   socket; ci/run.sh's serve pass covers the real transport end to end.
   Each engine gets a private telemetry registry so assertions on
   serve.* counters are isolated from other suites. *)

module P = Serving.Protocol
module T = Mrsl.Telemetry
module Json = T.Json

let counter telemetry name =
  match List.assoc_opt name (T.snapshot_counters telemetry) with
  | Some n -> n
  | None -> 0

let model =
  (* a0 -> a1 functional dependency, independent a2; cheap to learn and
     fully deterministic. Shared: Model.epoch is per-construction, and
     two engines must share an epoch for response lines to compare
     equal. *)
  lazy
    (Mrsl.Model.learn_points
       ~params:
         { Mrsl.Model.default_params with support_threshold = 0.01 }
       Helpers.dependent_schema
       (Helpers.dependent_points 300))

let engine_config =
  {
    Serving.Engine.default_config with
    seed = 2011;
    gibbs = { Mrsl.Gibbs.burn_in = 10; samples = 40 };
  }

let fresh_engine ?model_path () =
  let telemetry = T.create () in
  let engine =
    Serving.Engine.of_model ~telemetry ~config:engine_config ?model_path
      (Lazy.force model)
  in
  (engine, telemetry)

let infer ?id labels = P.req ?id (P.Infer labels)
let single = [| None; Some "v0"; Some "v1" |]

(* Most assertions here care about the wire lines; outcome-specific
   tests destructure Engine.answer directly. *)
let batch_lines ?pressure engine reqs =
  List.map
    (fun (a : Serving.Engine.answer) -> a.Serving.Engine.line)
    (Serving.Engine.handle_batch ?pressure engine reqs)

let response_json line =
  match Json.of_string (String.trim line) with
  | Json.Obj fields -> fields
  | _ -> Alcotest.failf "response is not a JSON object: %s" line

let response_ok line =
  List.assoc_opt "ok" (response_json line) = Some (Json.Bool true)

let response_error_code line =
  match List.assoc_opt "error" (response_json line) with
  | Some (Json.Obj err) -> (
      match List.assoc_opt "code" err with
      | Some (Json.String c) -> c
      | _ -> Alcotest.failf "error without code: %s" line)
  | _ -> Alcotest.failf "expected an error response: %s" line

let response_epoch line =
  match List.assoc_opt "epoch" (response_json line) with
  | Some (Json.Int e) -> e
  | _ -> Alcotest.failf "response without epoch: %s" line

(* --- protocol -------------------------------------------------------- *)

let test_protocol_roundtrip () =
  let ops =
    [
      P.Ping;
      P.Stats;
      P.Shutdown;
      P.Reload None;
      P.Reload (Some "swap.mrsl");
      P.Infer [| Some "v1"; None; Some "v0" |];
      P.Infer [| None; None; None |];
    ]
  in
  List.iter
    (fun op ->
      List.iter
        (fun id ->
          let req = P.req ?id op in
          let line = P.request_to_line req in
          Alcotest.(check bool)
            "line is newline-terminated" true
            (String.length line > 0 && line.[String.length line - 1] = '\n');
          match P.parse_request (String.trim line) with
          | Ok req' ->
              Alcotest.(check bool)
                (Printf.sprintf "round-trip %s" (String.trim line))
                true (req = req')
          | Error e ->
              Alcotest.failf "round-trip failed: %s" (Mrsl.Error.to_string e))
        [ None; Some (Json.Int 7); Some (Json.String "req-a") ])
    ops

let test_protocol_errors () =
  let code line =
    match P.parse_request line with
    | Ok _ -> Alcotest.failf "expected a parse failure: %s" line
    | Error e -> e.Mrsl.Error.code
  in
  Alcotest.(check string)
    "malformed JSON" "protocol.parse" (code "this is not json");
  Alcotest.(check string) "not an object" "protocol.parse" (code "[1,2]");
  Alcotest.(check string)
    "unknown op" "protocol.bad_request"
    (code {|{"op":"zap"}|});
  Alcotest.(check string)
    "missing op" "protocol.bad_request" (code {|{"id":3}|});
  Alcotest.(check string)
    "malformed tuple" "protocol.bad_request"
    (code {|{"op":"infer","tuple":"nope"}|});
  (* the id of a broken request survives into the error line so a
     pipelining client can still correlate it *)
  (match P.parse_request {|{"id":41,"op":"zap"}|} with
  | Ok _ -> Alcotest.fail "expected a failure"
  | Error e ->
      let line = P.error_line e in
      Alcotest.(check bool)
        "id echoed in error line" true
        (Astring_like.contains line {|"id":41|});
      Alcotest.(check bool) "marked not ok" false (response_ok line));
  (* error lines always parse back as JSON *)
  match P.parse_request "{{{" with
  | Ok _ -> Alcotest.fail "expected a failure"
  | Error e -> ignore (response_json (P.error_line e))

let test_framing () =
  let f = P.Framing.create () in
  (match P.Framing.feed f "a\nbb\r\nc" with
  | Ok frames ->
      Alcotest.(check (list string)) "two frames, CRLF stripped"
        [ "a"; "bb" ] frames
  | Error e -> Alcotest.failf "feed failed: %s" (Mrsl.Error.to_string e));
  Alcotest.(check int) "partial frame pending" 1 (P.Framing.pending f);
  (match P.Framing.feed f "d\n" with
  | Ok frames ->
      Alcotest.(check (list string)) "split frame reassembled" [ "cd" ] frames
  | Error e -> Alcotest.failf "feed failed: %s" (Mrsl.Error.to_string e));
  Alcotest.(check int) "nothing pending" 0 (P.Framing.pending f)

let test_framing_oversize () =
  let f = P.Framing.create ~max_frame:8 () in
  (match P.Framing.feed f "123456789" with
  | Ok _ -> Alcotest.fail "oversized frame accepted"
  | Error e ->
      Alcotest.(check string)
        "oversize code" "protocol.oversized" e.Mrsl.Error.code);
  (* poisoned: even a small follow-up chunk keeps erroring *)
  match P.Framing.feed f "x\n" with
  | Ok _ -> Alcotest.fail "poisoned framing accepted a frame"
  | Error e ->
      Alcotest.(check string)
        "still poisoned" "protocol.oversized" e.Mrsl.Error.code

(* --- admission ------------------------------------------------------- *)

let test_admission () =
  let telemetry = T.create () in
  let q = Serving.Admission.create ~telemetry ~capacity:2 () in
  Alcotest.(check int) "capacity" 2 (Serving.Admission.capacity q);
  Alcotest.(check bool) "first accepted" true (Serving.Admission.try_add q "a");
  Alcotest.(check bool) "second accepted" true (Serving.Admission.try_add q "b");
  Alcotest.(check bool) "third refused" false (Serving.Admission.try_add q "c");
  Alcotest.(check int) "refusal counted" 1 (counter telemetry "serve.overloaded");
  Alcotest.(check int) "length" 2 (Serving.Admission.length q);
  Alcotest.(check (list string))
    "drain is FIFO" [ "a" ]
    (Serving.Admission.drain ~max:1 q);
  Alcotest.(check bool)
    "slot freed" true (Serving.Admission.try_add q "c");
  Alcotest.(check (list string))
    "drain the rest in order" [ "b"; "c" ]
    (Serving.Admission.drain ~max:10 q);
  Alcotest.(check (list string))
    "empty drain" [] (Serving.Admission.drain ~max:10 q)

(* --- engine ---------------------------------------------------------- *)

let test_engine_batch_dedup () =
  let engine, telemetry = fresh_engine () in
  let reqs = List.init 8 (fun i -> infer ~id:(Json.Int i) single) in
  let responses = batch_lines engine reqs in
  Alcotest.(check int) "one response per request" 8 (List.length responses);
  List.iter
    (fun line ->
      Alcotest.(check bool) "served ok" true (response_ok line);
      Alcotest.(check bool)
        "exact single-missing path" true
        (Astring_like.contains line {|"mode":"exact"|}))
    responses;
  (* identical concurrent requests pay one computation *)
  let stats = Mrsl.Posterior_cache.stats (Serving.Engine.cache engine) in
  Alcotest.(check int)
    "dedup fan-out" 7 stats.Mrsl.Posterior_cache.dedup_fanout;
  Alcotest.(check int) "requests counted" 8 (counter telemetry "serve.requests");
  Alcotest.(check int) "one batch" 1 (counter telemetry "serve.batches");
  (* batch composition does not leak into the payload: a later singleton
     request for the same tuple is byte-identical *)
  let solo = Serving.Engine.handle_request engine (infer ~id:(Json.Int 0) single) in
  Alcotest.(check string) "batch vs solo" (List.hd responses) solo

let test_engine_gibbs_deterministic () =
  let engine, _ = fresh_engine () in
  let req = infer [| None; None; Some "v1" |] in
  let first = Serving.Engine.handle_request engine req in
  let second = Serving.Engine.handle_request engine req in
  Alcotest.(check bool) "served ok" true (response_ok first);
  Alcotest.(check bool)
    "multi-missing goes through Gibbs" true
    (Astring_like.contains first {|"mode":"gibbs"|});
  Alcotest.(check string) "repeat is bit-identical" first second

let test_engine_request_errors () =
  let engine, telemetry = fresh_engine () in
  let code labels =
    response_error_code
      (Serving.Engine.handle_request engine (infer labels))
  in
  Alcotest.(check string)
    "complete tuple refused" "serve.complete_tuple"
    (code [| Some "v0"; Some "v0"; Some "v1" |]);
  Alcotest.(check string)
    "arity mismatch" "serve.bad_tuple" (code [| None; Some "v0" |]);
  Alcotest.(check string)
    "unknown label" "serve.bad_tuple"
    (code [| None; Some "v0"; Some "purple" |]);
  Alcotest.(check int) "errors counted" 3 (counter telemetry "serve.errors");
  (* shutdown is acknowledged in-band; the transport decision is the
     server loop's, via wants_shutdown *)
  let bye =
    Serving.Engine.handle_request engine (P.req P.Shutdown)
  in
  Alcotest.(check bool) "shutdown acked" true (response_ok bye);
  Alcotest.(check bool)
    "wants_shutdown" true
    (Serving.Engine.wants_shutdown [ (P.req P.Shutdown) ]);
  Alcotest.(check bool)
    "plain batch does not" false
    (Serving.Engine.wants_shutdown [ infer single ])

let with_saved_model f =
  let path = Filename.temp_file "mrsl_serving_test" ".mrsl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Mrsl.Model_io.save path (Lazy.force model);
      f path)

let test_engine_epoch_swap () =
  with_saved_model @@ fun path ->
  let engine, telemetry = fresh_engine ~model_path:path () in
  let before = Serving.Engine.handle_request engine (infer single) in
  let stats () = Mrsl.Posterior_cache.stats (Serving.Engine.cache engine) in
  Alcotest.(check bool)
    "cache warmed" true ((stats ()).Mrsl.Posterior_cache.entries > 0);
  let epoch0 = Serving.Engine.epoch engine in
  (match Serving.Engine.reload engine with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "reload failed: %s" (Mrsl.Error.to_string e));
  Alcotest.(check bool)
    "epoch advanced" true
    (Serving.Engine.epoch engine <> epoch0);
  Alcotest.(check int) "reload counted" 1 (counter telemetry "serve.reloads");
  (* the stale generation is dropped eagerly — nothing keyed to the old
     epoch can ever be served again *)
  Alcotest.(check int)
    "stale cache generation dropped" 0
    (stats ()).Mrsl.Posterior_cache.entries;
  (* same model file, so the posterior payload is unchanged — only the
     epoch stamp moves *)
  let after = Serving.Engine.handle_request engine (infer single) in
  let strip line =
    Json.to_string ~pretty:false
      (Json.Obj
         (List.filter (fun (k, _) -> k <> "epoch") (response_json line)))
  in
  Alcotest.(check string) "payload stable across swap" (strip before)
    (strip after);
  Alcotest.(check bool)
    "epoch stamp moved" true
    (response_epoch before <> response_epoch after)

let test_engine_reload_failures () =
  with_saved_model @@ fun path ->
  let engine, telemetry = fresh_engine ~model_path:path () in
  let epoch0 = Serving.Engine.epoch engine in
  (match Serving.Engine.reload ~path:"/nonexistent/model.mrsl" engine with
  | Ok _ -> Alcotest.fail "reload of a missing file succeeded"
  | Error e ->
      Alcotest.(check string) "load failure code" "serve.reload"
        e.Mrsl.Error.code);
  (* a schema change is refused: live clients hold tuples shaped by the
     old schema *)
  let other_path = Filename.temp_file "mrsl_serving_other" ".mrsl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove other_path with Sys_error _ -> ())
    (fun () ->
      let other =
        Mrsl.Model.learn
          ~params:
            { Mrsl.Model.default_params with support_threshold = 0.01 }
          (Helpers.fig1_relation ())
      in
      Mrsl.Model_io.save other_path other;
      match Serving.Engine.reload ~path:other_path engine with
      | Ok _ -> Alcotest.fail "schema-changing reload succeeded"
      | Error e ->
          Alcotest.(check string) "schema guard code" "serve.reload_schema"
            e.Mrsl.Error.code);
  (* both failures left the old model serving *)
  Alcotest.(check int) "epoch unchanged" epoch0 (Serving.Engine.epoch engine);
  Alcotest.(check int)
    "no swap counted" 0
    (counter telemetry "serve.reloads");
  Alcotest.(check bool)
    "still serving" true
    (response_ok (Serving.Engine.handle_request engine (infer single)))

let test_engine_batch_reload_segments () =
  with_saved_model @@ fun path ->
  let engine, _ = fresh_engine ~model_path:path () in
  let batch =
    [
      infer ~id:(Json.Int 0) single;
      (P.req ~id:(Json.Int 1) (P.Reload None));
      infer ~id:(Json.Int 2) single;
    ]
  in
  match batch_lines engine batch with
  | [ r0; r1; r2 ] ->
      Alcotest.(check bool) "pre-swap request served" true (response_ok r0);
      Alcotest.(check bool) "reload acked" true (response_ok r1);
      Alcotest.(check bool) "post-swap request served" true (response_ok r2);
      (* the swap lands between the two infer requests: the first is
         answered by the old model's epoch, the second by the new one *)
      Alcotest.(check bool)
        "epochs straddle the swap" true
        (response_epoch r0 <> response_epoch r2)
  | rs -> Alcotest.failf "expected 3 responses, got %d" (List.length rs)

(* --- protocol deadlines ---------------------------------------------- *)

let test_protocol_deadline_roundtrip () =
  let r = P.req ~id:(Json.Int 3) ~deadline_ms:250 P.Ping in
  let line = P.request_to_line r in
  Alcotest.(check bool)
    "deadline encoded" true
    (Astring_like.contains line {|"deadline_ms":250|});
  (match P.parse_request (String.trim line) with
  | Ok r' -> Alcotest.(check bool) "deadline round-trips" true (r = r')
  | Error e -> Alcotest.failf "round-trip failed: %s" (Mrsl.Error.to_string e));
  (match P.parse_request {|{"op":"ping"}|} with
  | Ok r' ->
      Alcotest.(check bool)
        "absent stays absent" true
        (r'.P.deadline_ms = None)
  | Error e -> Alcotest.failf "parse failed: %s" (Mrsl.Error.to_string e));
  match P.parse_request {|{"op":"ping","deadline_ms":-5}|} with
  | Ok _ -> Alcotest.fail "negative deadline accepted"
  | Error e ->
      Alcotest.(check string)
        "negative deadline refused" "protocol.bad_request" e.Mrsl.Error.code

(* --- engine load-shedding ladder ------------------------------------- *)

let test_engine_cache_only () =
  let engine, telemetry = fresh_engine () in
  (* Cold: nothing cached — a Cache_only batch sheds instead of
     computing, with its own counter, not serve.errors. *)
  (match
     batch_lines ~pressure:Serving.Engine.Cache_only engine
       [ infer ~id:(Json.Int 0) single ]
   with
  | [ line ] ->
      Alcotest.(check string)
        "cold miss shed" "serve.shed" (response_error_code line)
  | rs -> Alcotest.failf "expected 1 response, got %d" (List.length rs));
  Alcotest.(check int) "shed counted" 1 (counter telemetry "serve.shed");
  Alcotest.(check int)
    "shed is not an error" 0
    (counter telemetry "serve.errors");
  (* Warm: a normal request populates the cache; the same request under
     pressure is then answered bit-identically, for free. *)
  let normal = Serving.Engine.handle_request engine (infer single) in
  (match
     batch_lines ~pressure:Serving.Engine.Cache_only engine
       [ infer single ]
   with
  | [ line ] ->
      Alcotest.(check bool) "warm hit served" true (response_ok line);
      Alcotest.(check string) "bit-identical to the normal answer" normal line
  | rs -> Alcotest.failf "expected 1 response, got %d" (List.length rs));
  (* multi-missing has no cached rung: always shed under pressure *)
  (match
     batch_lines ~pressure:Serving.Engine.Cache_only engine
       [ infer [| None; None; Some "v1" |] ]
   with
  | [ line ] ->
      Alcotest.(check string)
        "gibbs work shed" "serve.shed" (response_error_code line)
  | rs -> Alcotest.failf "expected 1 response, got %d" (List.length rs));
  (* control-plane ops keep answering under pressure *)
  match
    batch_lines ~pressure:Serving.Engine.Cache_only engine
      [ P.req P.Ping ]
  with
  | [ line ] ->
      Alcotest.(check bool) "ping served under pressure" true (response_ok line)
  | rs -> Alcotest.failf "expected 1 response, got %d" (List.length rs)

(* --- client resilience ----------------------------------------------- *)

let test_client_backoff () =
  let delay = Serving.Client.backoff_delay ~base:0.05 ~max_delay:1.0 in
  Alcotest.(check (float 1e-12))
    "deterministic" (delay ~seed:9 0) (delay ~seed:9 0);
  (* attempt n lands in [cap/2, cap) with cap = min max_delay base*2^n *)
  List.iter
    (fun attempt ->
      let cap = Float.min 1.0 (0.05 *. (2. ** float_of_int attempt)) in
      let d = delay ~seed:9 attempt in
      Alcotest.(check bool)
        (Printf.sprintf "attempt %d within jitter band" attempt)
        true
        (d >= cap /. 2. && d < cap))
    [ 0; 1; 2; 3; 8; 20 ];
  Alcotest.(check bool)
    "seed de-correlates the herd" true
    (delay ~seed:1 4 <> delay ~seed:2 4)

(* --- server, over a real socket -------------------------------------- *)

(* Run [f endpoint] against a live daemon in another domain, then stop
   it and return the engine's (private) telemetry registry — counter
   assertions happen after [Domain.join], which orders the server
   domain's writes before our reads. *)
let with_server ?(configure = fun c -> c) ?sock f =
  let engine, telemetry = fresh_engine () in
  let sock =
    match sock with
    | Some s -> s
    | None ->
        let s = Filename.temp_file "mrsl-serving-test" ".sock" in
        Sys.remove s;
        s
  in
  let endpoint = P.Unix_socket sock in
  let config =
    configure { (Serving.Server.default_config endpoint) with tick = 0.005 }
  in
  let stop = Atomic.make false in
  let ready = Atomic.make false in
  let server =
    Domain.spawn (fun () ->
        Serving.Server.run ~stop
          ~on_ready:(fun () -> Atomic.set ready true)
          config engine)
  in
  while not (Atomic.get ready) do
    Domain.cpu_relax ()
  done;
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Domain.join server)
    (fun () -> f endpoint);
  telemetry

(* Raw fd plumbing: the resilient {!Serving.Client} hides exactly the
   degenerate peer behaviors (half-close, torn frames, never reading)
   these tests need to produce. *)
let raw_connect = function
  | P.Unix_socket path ->
      (match Sys.os_type with
      | "Unix" | "Cygwin" -> Sys.set_signal Sys.sigpipe Sys.Signal_ignore
      | _ -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      fd
  | P.Tcp _ -> Alcotest.fail "tests use unix sockets"

let raw_close fd = try Unix.close fd with Unix.Unix_error _ -> ()

let read_line_fd ?(timeout = 5.) fd =
  let deadline = Mrsl.Clock.now () +. timeout in
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 512 in
  let rec go () =
    let data = Buffer.contents buf in
    match String.index_opt data '\n' with
    | Some i -> String.sub data 0 i
    | None ->
        let remaining = deadline -. Mrsl.Clock.now () in
        if remaining <= 0. then Alcotest.fail "read_line_fd timed out";
        (match Unix.select [ fd ] [] [] remaining with
        | [], _, _ -> Alcotest.fail "read_line_fd timed out"
        | _ -> (
            match Unix.read fd chunk 0 (Bytes.length chunk) with
            | 0 -> raise End_of_file
            | n -> Buffer.add_subbytes buf chunk 0 n));
        go ()
  in
  go ()

(* Drain until the server closes the connection; fail on timeout. *)
let expect_eof ?(timeout = 5.) fd =
  let deadline = Mrsl.Clock.now () +. timeout in
  let chunk = Bytes.create 512 in
  let rec go () =
    let remaining = deadline -. Mrsl.Clock.now () in
    if remaining <= 0. then Alcotest.fail "expected EOF, got silence";
    match Unix.select [ fd ] [] [] remaining with
    | [], _, _ -> Alcotest.fail "expected EOF, got silence"
    | _ -> (
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | _ -> go ()
        | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
            ())
  in
  go ()

let test_server_half_close () =
  let telemetry =
    with_server @@ fun endpoint ->
    let fd = raw_connect endpoint in
    Fun.protect
      ~finally:(fun () -> raw_close fd)
      (fun () ->
        let line = "{\"op\":\"ping\"}\n" in
        ignore (Unix.write_substring fd line 0 (String.length line));
        (* EOF with a response still owed: the server must treat this as
           a half-close and flush, not drop the pong. *)
        Unix.shutdown fd Unix.SHUTDOWN_SEND;
        let resp = read_line_fd fd in
        Alcotest.(check bool) "pong after half-close" true (response_ok resp);
        expect_eof fd)
  in
  Alcotest.(check int)
    "clean close is not an error" 0
    (counter telemetry "serve.errors")

let test_server_truncated_frame () =
  let telemetry =
    with_server @@ fun endpoint ->
    let fd = raw_connect endpoint in
    ignore (Unix.write_substring fd "{\"op\":\"pi" 0 9);
    raw_close fd;
    (* A later probe round-trip guarantees the server has processed the
       EOF (its readiness predates the probe's accept). *)
    let c = Serving.Client.connect_retry ~timeout:5. endpoint in
    Fun.protect
      ~finally:(fun () -> Serving.Client.close c)
      (fun () ->
        Alcotest.(check bool)
          "daemon alive" true
          (response_ok (Serving.Client.rpc c (P.req P.Ping))))
  in
  Alcotest.(check int)
    "truncated frame counted" 1
    (counter telemetry "serve.errors")

let test_server_idle_kill () =
  let telemetry =
    with_server ~configure:(fun c -> { c with idle_timeout = 0.15 })
    @@ fun endpoint ->
    let fd = raw_connect endpoint in
    Fun.protect
      ~finally:(fun () -> raw_close fd)
      (fun () ->
        (* Slow-loris: keep dripping bytes that never complete a frame.
           The reaper keys on completed frames, so the drip must not
           keep the connection alive. *)
        try
          for _ = 1 to 50 do
            ignore (Unix.write_substring fd "x" 0 1);
            Unix.sleepf 0.02
          done;
          Alcotest.fail "slow-loris connection survived the reaper"
        with Unix.Unix_error _ -> ())
  in
  Alcotest.(check int)
    "idle kill counted" 1
    (counter telemetry "serve.idle_killed")

let test_server_out_buf_kill () =
  let telemetry =
    with_server ~configure:(fun c ->
        { c with out_buf_max = 512; idle_timeout = 0. })
    @@ fun endpoint ->
    (* Stalled writes force responses to pile up server-side (an
       un-injected flush would just park them in the socket buffer). *)
    Mrsl.Fault_inject.with_config
      { Mrsl.Fault_inject.disabled with seed = 5; stall_write_rate = 1.0 }
      (fun () ->
        let fd = raw_connect endpoint in
        Fun.protect
          ~finally:(fun () -> raw_close fd)
          (fun () ->
            let ping = "{\"op\":\"ping\"}\n" in
            (try
               for _ = 1 to 200 do
                 ignore (Unix.write_substring fd ping 0 (String.length ping))
               done
             with Unix.Unix_error _ -> ());
            (* never read a byte: the 200 pongs must cross the 512-byte
               ceiling and get this connection dropped *)
            expect_eof ~timeout:10. fd))
  in
  Alcotest.(check bool)
    "out-buffer kill counted" true
    (counter telemetry "serve.out_buf_killed" >= 1)

let contains s sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

let test_server_socket_probe () =
  (* A live server's socket must never be stolen: a second startup on
     the same path refuses instead of unlinking and rebinding. *)
  ignore
    ( with_server @@ fun endpoint ->
      let engine2, _ = fresh_engine () in
      (match
         Serving.Server.run
           { (Serving.Server.default_config endpoint) with tick = 0.005 }
           engine2
       with
      | () -> Alcotest.fail "second server started on a live socket"
      | exception Failure msg ->
          Alcotest.(check bool)
            "refusal names the live server" true (contains msg "listening"));
      (* ...and the live server is undisturbed by the probe *)
      let c = Serving.Client.connect_retry ~timeout:5. endpoint in
      Fun.protect
        ~finally:(fun () -> Serving.Client.close c)
        (fun () ->
          Alcotest.(check bool)
            "original server undisturbed" true
            (response_ok (Serving.Client.rpc c (P.req P.Ping)))) );
  (* A dead server's leftover (nobody holds the listen — the probe sees
     ECONNREFUSED) is unlinked and taken over. *)
  let sock = Filename.temp_file "mrsl-serving-stale" ".sock" in
  Sys.remove sock;
  let dead = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind dead (Unix.ADDR_UNIX sock);
  Unix.close dead;
  ignore
    ( with_server ~sock @@ fun endpoint ->
      let c = Serving.Client.connect_retry ~timeout:5. endpoint in
      Fun.protect
        ~finally:(fun () -> Serving.Client.close c)
        (fun () ->
          Alcotest.(check bool)
            "stale socket taken over" true
            (response_ok (Serving.Client.rpc c (P.req P.Ping)))) )

let test_server_out_buf_total_kill () =
  let telemetry =
    (* Per-connection ceiling far out of reach: only the aggregate
       budget can be what kills the non-reading peer. *)
    with_server ~configure:(fun c ->
        { c with out_buf_max = max_int; out_buf_total = 512; idle_timeout = 0. })
    @@ fun endpoint ->
    Mrsl.Fault_inject.with_config
      { Mrsl.Fault_inject.disabled with seed = 5; stall_write_rate = 1.0 }
      (fun () ->
        let fd = raw_connect endpoint in
        Fun.protect
          ~finally:(fun () -> raw_close fd)
          (fun () ->
            let ping = "{\"op\":\"ping\"}\n" in
            (try
               for _ = 1 to 200 do
                 ignore (Unix.write_substring fd ping 0 (String.length ping))
               done
             with Unix.Unix_error _ -> ());
            expect_eof ~timeout:10. fd))
  in
  Alcotest.(check bool)
    "aggregate out-buffer kill counted" true
    (counter telemetry "serve.out_buf_killed" >= 1)

let test_server_deadline_shed () =
  let telemetry =
    with_server @@ fun endpoint ->
    let c = Serving.Client.connect_retry ~timeout:5. endpoint in
    Fun.protect
      ~finally:(fun () -> Serving.Client.close c)
      (fun () ->
        let line = Serving.Client.rpc c (P.req ~deadline_ms:0 (P.Infer single)) in
        Alcotest.(check string)
          "zero budget shed before computing" "serve.deadline_exceeded"
          (response_error_code line);
        let ok =
          Serving.Client.rpc c (P.req ~deadline_ms:30_000 (P.Infer single))
        in
        Alcotest.(check bool) "roomy budget served" true (response_ok ok))
  in
  Alcotest.(check int)
    "deadline shed counted" 1
    (counter telemetry "serve.deadline_exceeded");
  Alcotest.(check int)
    "shed is not an error" 0
    (counter telemetry "serve.errors")

let test_server_conn_cap () =
  let telemetry =
    with_server ~configure:(fun c -> { c with max_conns = 1 })
    @@ fun endpoint ->
    let c1 = Serving.Client.connect_retry ~timeout:5. endpoint in
    Fun.protect
      ~finally:(fun () -> Serving.Client.close c1)
      (fun () ->
        (* the ping round-trip pins c1 as accepted before c2 arrives *)
        Alcotest.(check bool)
          "first connection serves" true
          (response_ok (Serving.Client.rpc c1 (P.req P.Ping)));
        let fd = raw_connect endpoint in
        Fun.protect
          ~finally:(fun () -> raw_close fd)
          (fun () ->
            let line = read_line_fd fd in
            Alcotest.(check string)
              "structured reject" "serve.conn_rejected"
              (response_error_code line);
            expect_eof fd);
        Alcotest.(check bool)
          "survivor unaffected" true
          (response_ok (Serving.Client.rpc c1 (P.req P.Ping))))
  in
  Alcotest.(check int)
    "reject counted" 1
    (counter telemetry "serve.conn_rejected")

(* --- request-scoped observability ------------------------------------ *)

let test_admission_gauge_fresh () =
  (* Regression: the serve.queue_depth gauge used to be published only
     on enqueue, so a drain left the pre-drain depth visible until the
     next request arrived. Every queue mutation must publish. *)
  let telemetry = T.create () in
  let q = Serving.Admission.create ~telemetry ~capacity:4 () in
  let depth () =
    match T.gauge_value telemetry "serve.queue_depth" with
    | Some d -> int_of_float d
    | None -> Alcotest.fail "serve.queue_depth gauge never published"
  in
  Alcotest.(check bool) "a accepted" true (Serving.Admission.try_add q "a");
  Alcotest.(check int) "enqueue publishes" 1 (depth ());
  Alcotest.(check bool) "b accepted" true (Serving.Admission.try_add q "b");
  Alcotest.(check bool) "c accepted" true (Serving.Admission.try_add q "c");
  Alcotest.(check int) "enqueues publish" 3 (depth ());
  ignore (Serving.Admission.drain ~max:2 q);
  Alcotest.(check int) "drain publishes too" 1 (depth ());
  ignore (Serving.Admission.drain ~max:10 q);
  Alcotest.(check int) "empty published" 0 (depth ())

let summary_of telemetry name =
  match T.histogram telemetry name with
  | Some s -> s
  | None -> Alcotest.failf "histogram %s missing" name

let test_server_phase_histograms () =
  let telemetry =
    with_server @@ fun endpoint ->
    let c = Serving.Client.connect_retry ~timeout:5. endpoint in
    Fun.protect
      ~finally:(fun () -> Serving.Client.close c)
      (fun () ->
        for _ = 1 to 5 do
          Alcotest.(check bool)
            "served" true
            (response_ok (Serving.Client.rpc c (infer single)))
        done;
        let shed =
          Serving.Client.rpc c (P.req ~deadline_ms:0 (P.Infer single))
        in
        Alcotest.(check string)
          "zero budget shed" "serve.deadline_exceeded"
          (response_error_code shed))
  in
  let summary = summary_of telemetry in
  let total = summary "serve.latency_seconds" in
  let qw = summary "serve.queue_wait_seconds" in
  let cp = summary "serve.compute_seconds" in
  let fl = summary "serve.flush_wait_seconds" in
  (* every finalized request lands one observation in each phase *)
  Alcotest.(check int) "six requests finalized" 6 total.T.count;
  Alcotest.(check int) "queue-wait count matches" total.T.count qw.T.count;
  Alcotest.(check int) "compute count matches" total.T.count cp.T.count;
  Alcotest.(check int) "flush-wait count matches" total.T.count fl.T.count;
  (* the phases decompose the total: all four are derived from the same
     monotonic stamps, so the means sum to the total's mean up to float
     rounding — sum-consistency by construction, not by tolerance *)
  let sum = qw.T.mean +. cp.T.mean +. fl.T.mean in
  Alcotest.(check bool)
    (Printf.sprintf "phase means sum to total (%g vs %g)" sum total.T.mean)
    true
    (Float.abs (sum -. total.T.mean) <= 1e-9 +. (1e-6 *. total.T.mean));
  (* outcome-labelled latency families split the same requests *)
  Alcotest.(check int)
    "ok-labelled observations" 5
    (summary "serve.latency_seconds.ok").T.count;
  Alcotest.(check int)
    "deadline-labelled observations" 1
    (summary "serve.latency_seconds.deadline_exceeded").T.count

let test_server_request_flows () =
  (* Every admitted request becomes a trace flow that balances: one
     admission-time start (server-loop track) matched by a finish on the
     batch that served it — plus, for multi-missing work, a second arrow
     into the Parallel worker that ran the tuple. *)
  let (_ : T.t), sink =
    Mrsl.Trace.with_sink (fun () ->
        with_server @@ fun endpoint ->
        let c = Serving.Client.connect_retry ~timeout:5. endpoint in
        Fun.protect
          ~finally:(fun () -> Serving.Client.close c)
          (fun () ->
            ignore (Serving.Client.rpc c (P.req P.Ping));
            ignore (Serving.Client.rpc c (infer single));
            ignore
              (Serving.Client.rpc c (infer [| None; None; Some "v1" |]));
            let shed =
              Serving.Client.rpc c (P.req ~deadline_ms:0 (P.Infer single))
            in
            Alcotest.(check string)
              "zero budget shed" "serve.deadline_exceeded"
              (response_error_code shed)))
  in
  let flows : (int, int * int) Hashtbl.t = Hashtbl.create 8 in
  let done_instants = ref 0 in
  List.iter
    (fun (ev : Mrsl.Trace.event) ->
      if ev.cat = "serve" && ev.name = "serve.request" then begin
        let s, f =
          Option.value ~default:(0, 0) (Hashtbl.find_opt flows ev.id)
        in
        match ev.phase with
        | Mrsl.Trace.Flow_start -> Hashtbl.replace flows ev.id (s + 1, f)
        | Mrsl.Trace.Flow_end -> Hashtbl.replace flows ev.id (s, f + 1)
        | _ -> ()
      end;
      if ev.cat = "serve" && ev.name = "serve.request.done" then
        incr done_instants)
    (Mrsl.Trace.events sink);
  Alcotest.(check int) "one flow per admitted request" 4
    (Hashtbl.length flows);
  Alcotest.(check int) "one lifecycle instant per request" 4 !done_instants;
  Hashtbl.iter
    (fun id (s, f) ->
      Alcotest.(check bool)
        (Printf.sprintf "flow %d balanced (%d starts, %d ends)" id s f)
        true
        (s = f && s >= 1))
    flows

let test_server_observation_only () =
  (* Tracing plus access logging must be pure observation: the exact
     same request stream yields bit-identical response lines with and
     without them. The multi-missing request routes the flow through
     Parallel.run_contained, so this also pins the worker-side hook. *)
  let workload endpoint =
    let c = Serving.Client.connect_retry ~timeout:5. endpoint in
    Fun.protect
      ~finally:(fun () -> Serving.Client.close c)
      (fun () ->
        List.map
          (fun req -> Serving.Client.rpc c req)
          [
            infer ~id:(Json.Int 0) single;
            infer ~id:(Json.Int 1) single;
            infer ~id:(Json.Int 2) [| None; None; Some "v1" |];
            infer ~id:(Json.Int 3) [| Some "v0"; None; None |];
          ])
  in
  let plain = ref [] in
  ignore (with_server (fun endpoint -> plain := workload endpoint));
  let log_path = Filename.temp_file "mrsl-serving-obs" ".log" in
  let observed = ref [] in
  Fun.protect
    ~finally:(fun () -> try Sys.remove log_path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out log_path in
      let (_ : T.t), (_ : Mrsl.Trace.sink) =
        Mrsl.Trace.with_sink (fun () ->
            Fun.protect
              ~finally:(fun () -> close_out oc)
              (fun () ->
                with_server
                  ~configure:(fun c ->
                    { c with access_log = Some oc; log_sample = 1.0 })
                  (fun endpoint -> observed := workload endpoint)))
      in
      Alcotest.(check bool)
        "every request logged" true
        (List.length
           (In_channel.with_open_text log_path In_channel.input_lines)
        >= 4));
  Alcotest.(check (list string))
    "posteriors bit-identical under observation" !plain !observed

(* The timing fields vary run to run; everything else — which requests
   got logged and their identity/outcome fields — is the deterministic
   part the test pins. *)
let strip_access_line line =
  let volatile =
    [ "ts"; "queue_wait_ms"; "compute_ms"; "flush_ms"; "total_ms" ]
  in
  match Json.of_string line with
  | Json.Obj fields ->
      Json.to_string ~pretty:false
        (Json.Obj
           (List.filter (fun (k, _) -> not (List.mem k volatile)) fields))
  | _ -> Alcotest.failf "access-log line is not a JSON object: %s" line

let test_server_access_log_deterministic () =
  let run_once () =
    let path = Filename.temp_file "mrsl-serving-access" ".log" in
    Fun.protect
      ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
      (fun () ->
        let oc = open_out path in
        ignore
          (Fun.protect
             ~finally:(fun () -> close_out oc)
             (fun () ->
               with_server
                 ~configure:(fun c ->
                   (* slow_ms out of reach: only the deterministic
                      sampler and the always-log outcomes decide *)
                   {
                     c with
                     access_log = Some oc;
                     log_sample = 0.5;
                     slow_ms = 1e9;
                   })
                 (fun endpoint ->
                   let c =
                     Serving.Client.connect_retry ~timeout:5. endpoint
                   in
                   Fun.protect
                     ~finally:(fun () -> Serving.Client.close c)
                     (fun () ->
                       for i = 0 to 19 do
                         ignore
                           (Serving.Client.rpc c
                              (infer ~id:(Json.Int i) single))
                       done;
                       ignore
                         (Serving.Client.rpc c
                            (P.req ~id:(Json.Int 99) ~deadline_ms:0
                               (P.Infer single)))))));
        List.map strip_access_line
          (In_channel.with_open_text path In_channel.input_lines))
  in
  let first = run_once () in
  let second = run_once () in
  Alcotest.(check (list string))
    "same seed + workload => identical sampled log" first second;
  (* the sampler really sampled (not all 21, not none) ... *)
  let n = List.length first in
  Alcotest.(check bool)
    (Printf.sprintf "sampling dropped some lines (%d of 21)" n)
    true
    (n > 0 && n < 21);
  (* ... and the deadline shed bypassed it: sheds are always logged *)
  Alcotest.(check bool)
    "shed always logged" true
    (List.exists
       (fun l -> Astring_like.contains l {|"outcome":"deadline_exceeded"|})
       first)

let exposition_value body name =
  let v = ref None in
  String.split_on_char '\n' body
  |> List.iter (fun line ->
         match String.split_on_char ' ' line with
         | [ n; value ] when n = name -> v := float_of_string_opt value
         | _ -> ());
  !v

let test_server_metrics_under_burst () =
  (* A Prometheus scrape concurrent with a pipelined inference burst:
     the scrape must answer promptly (the client timeout is the watchdog)
     and the request counter must be monotone across scrapes. *)
  let windows = 8 and window = 16 in
  let telemetry =
    with_server @@ fun endpoint ->
    let burst =
      Domain.spawn (fun () ->
          let c = Serving.Client.connect_retry ~timeout:10. endpoint in
          Fun.protect
            ~finally:(fun () -> Serving.Client.close c)
            (fun () ->
              for w = 0 to windows - 1 do
                for i = 0 to window - 1 do
                  Serving.Client.send c
                    (infer ~id:(Json.Int ((w * window) + i)) single)
                done;
                for _ = 1 to window do
                  if not (response_ok (Serving.Client.recv c)) then
                    failwith "burst request failed"
                done
              done))
    in
    let last = ref (-1.) in
    for _ = 1 to 5 do
      let body = Serving.Client.scrape_metrics ~timeout:5. endpoint in
      (* A scrape can land before the first request does, when the
         counter is not in the registry yet: absent reads as zero. *)
      let v =
        Option.value ~default:0.
          (exposition_value body "mrsl_serve_requests_total")
      in
      Alcotest.(check bool)
        (Printf.sprintf "counter monotone (%.0f after %.0f)" v !last)
        true (v >= !last);
      last := v
    done;
    Domain.join burst
  in
  Alcotest.(check int)
    "every burst request served" (windows * window)
    (counter telemetry "serve.requests");
  Alcotest.(check bool)
    "scrapes counted" true
    (counter telemetry "serve.metrics_scrapes" >= 5)

let suite =
  [
    ("protocol round-trip", `Quick, test_protocol_roundtrip);
    ("protocol structured errors", `Quick, test_protocol_errors);
    ("protocol deadline_ms", `Quick, test_protocol_deadline_roundtrip);
    ("framing reassembly", `Quick, test_framing);
    ("framing oversize poisons", `Quick, test_framing_oversize);
    ("admission bound + FIFO", `Quick, test_admission);
    ("batch dedups identical requests", `Quick, test_engine_batch_dedup);
    ("gibbs requests deterministic", `Quick, test_engine_gibbs_deterministic);
    ("request errors structured", `Quick, test_engine_request_errors);
    ("epoch swap invalidates cache", `Quick, test_engine_epoch_swap);
    ("reload failures keep serving", `Quick, test_engine_reload_failures);
    ("reload splits a batch", `Quick, test_engine_batch_reload_segments);
    ("cache-only pressure rung", `Quick, test_engine_cache_only);
    ("client backoff deterministic", `Quick, test_client_backoff);
    ("server half-close flushes", `Quick, test_server_half_close);
    ("server counts truncated frames", `Quick, test_server_truncated_frame);
    ("server reaps slow-loris", `Quick, test_server_idle_kill);
    ("server enforces output ceiling", `Quick, test_server_out_buf_kill);
    ( "server enforces aggregate output budget",
      `Quick,
      test_server_out_buf_total_kill );
    ("server sheds expired deadlines", `Quick, test_server_deadline_shed);
    ("server rejects past the conn cap", `Quick, test_server_conn_cap);
    ("socket probe: live kept, stale reclaimed", `Quick, test_server_socket_probe);
    ("queue-depth gauge fresh at every mutation", `Quick, test_admission_gauge_fresh);
    ("phase histograms sum-consistent", `Quick, test_server_phase_histograms);
    ("request flows balance in the trace", `Quick, test_server_request_flows);
    ("tracing and logging observation-only", `Quick, test_server_observation_only);
    ( "access log deterministically sampled",
      `Quick,
      test_server_access_log_deterministic );
    ("metrics scrape concurrent with burst", `Quick, test_server_metrics_under_burst);
  ]
