(* Tests for the Telemetry registry and its JSON emitter/parser. *)

module T = Mrsl.Telemetry
module Json = Mrsl.Telemetry.Json

let test_counters_monotone () =
  let t = T.create () in
  Alcotest.(check int) "zero before first touch" 0 (T.counter t "a");
  T.incr t "a";
  Alcotest.(check int) "one" 1 (T.counter t "a");
  T.incr ~by:41 t "a";
  Alcotest.(check int) "accumulates" 42 (T.counter t "a");
  T.add t "a" 0;
  Alcotest.(check int) "zero add is a no-op" 42 (T.counter t "a");
  Alcotest.check_raises "negative increments rejected"
    (Invalid_argument "Telemetry.incr: counters are monotone (by < 0)")
    (fun () -> T.incr ~by:(-1) t "a")

let test_counters_concurrent () =
  let t = T.create () in
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () -> for _ = 1 to 1000 do T.incr t "hits" done))
  in
  List.iter Domain.join domains;
  Alcotest.(check int) "atomic under contention" 4000 (T.counter t "hits")

let test_gauges () =
  let t = T.create () in
  Alcotest.(check bool) "absent" true (T.gauge_value t "depth" = None);
  T.gauge t "depth" 3.;
  T.gauge t "depth" 1.;
  Alcotest.(check bool) "last wins" true (T.gauge_value t "depth" = Some 1.);
  match Json.member "gauges" (T.to_json t) with
  | Some (Json.Obj [ ("depth", g) ]) ->
      Alcotest.(check (float 0.)) "max retained" 3.
        (Json.to_float (Option.get (Json.member "max" g)))
  | _ -> Alcotest.fail "gauge snapshot shape"

let test_histogram_summary () =
  let t = T.create () in
  List.iter (T.observe t "lat") [ 5.; 1.; 4.; 2.; 3. ];
  match T.histogram t "lat" with
  | None -> Alcotest.fail "histogram missing"
  | Some s ->
      Alcotest.(check int) "count" 5 s.count;
      Alcotest.(check (float 0.)) "min" 1. s.min;
      Alcotest.(check (float 0.)) "max" 5. s.max;
      Alcotest.(check (float 1e-9)) "mean" 3. s.mean;
      Alcotest.(check (float 0.)) "p50" 3. s.p50

let test_span_accumulates () =
  let t = T.create () in
  let v = T.span t "work" (fun () -> 7) in
  Alcotest.(check int) "span returns value" 7 v;
  (try T.span t "work" (fun () -> failwith "boom") with Failure _ -> ());
  match Json.member "spans" (T.to_json t) with
  | Some (Json.Obj [ ("work", s) ]) ->
      Alcotest.(check int) "both calls recorded (even the raising one)" 2
        (match Json.member "calls" s with Some (Json.Int n) -> n | _ -> -1)
  | _ -> Alcotest.fail "span snapshot shape"

let test_json_round_trip () =
  let t = T.create () in
  T.incr ~by:7 t "parallel.steals";
  T.gauge t "parallel.domains" 4.;
  List.iter (T.observe t "gibbs.memo_hit_rate") [ 0.25; 0.5; 0.125 ];
  ignore (T.span t "parallel.run" (fun () -> ()));
  let j = T.to_json t in
  let round_tripped = Json.of_string (Json.to_string j) in
  Alcotest.(check bool) "snapshot round-trips through text" true
    (Json.equal j round_tripped);
  (* compact form round-trips too *)
  let compact = Json.of_string (Json.to_string ~pretty:false j) in
  Alcotest.(check bool) "compact round-trips" true (Json.equal j compact)

let test_json_parser () =
  let j =
    Json.of_string
      {| {"a": [1, 2.5, -3e2, true, false, null], "s": "he\"llo\nA"} |}
  in
  (match Json.member "a" j with
  | Some (Json.List [ Json.Int 1; Json.Float 2.5; Json.Float f; Json.Bool true;
                      Json.Bool false; Json.Null ]) ->
      Alcotest.(check (float 0.)) "exponent" (-300.) f
  | _ -> Alcotest.fail "array parse");
  (match Json.member "s" j with
  | Some (Json.String s) -> Alcotest.(check string) "escapes" "he\"llo\nA" s
  | _ -> Alcotest.fail "string parse");
  Alcotest.check_raises "trailing garbage rejected"
    (Json.Parse_error "trailing garbage at offset 5") (fun () ->
      ignore (Json.of_string "null x"))

let test_json_floats_survive () =
  let values = [ 0.1; 1. /. 3.; 1e-9; 12345.678901234567; 1.0; -0.0 ] in
  List.iter
    (fun f ->
      let s = Json.to_string (Json.Float f) in
      match Json.of_string s with
      | Json.Float g -> Alcotest.(check (float 0.)) s f g
      | Json.Int n -> Alcotest.(check (float 0.)) s f (float_of_int n)
      | _ -> Alcotest.fail "float parse")
    values;
  (* non-finite floats degrade to null rather than emitting invalid JSON *)
  Alcotest.(check string) "nan -> null" "null" (Json.to_string (Json.Float Float.nan));
  Alcotest.(check string) "inf -> null" "null" (Json.to_string (Json.Float infinity))

let test_reset () =
  let t = T.create () in
  T.incr t "a";
  T.reset t;
  Alcotest.(check int) "counters dropped" 0 (T.counter t "a")

let suite =
  [
    ("counters monotone", `Quick, test_counters_monotone);
    ("counters atomic across domains", `Quick, test_counters_concurrent);
    ("gauges last + max", `Quick, test_gauges);
    ("histogram summary", `Quick, test_histogram_summary);
    ("span accumulates", `Quick, test_span_accumulates);
    ("JSON round-trip", `Quick, test_json_round_trip);
    ("JSON parser", `Quick, test_json_parser);
    ("JSON floats survive", `Quick, test_json_floats_survive);
    ("reset", `Quick, test_reset);
  ]
