(* Tests for the Telemetry registry and its JSON emitter/parser. *)

module T = Mrsl.Telemetry
module Json = Mrsl.Telemetry.Json

let test_counters_monotone () =
  let t = T.create () in
  Alcotest.(check int) "zero before first touch" 0 (T.counter t "a");
  T.incr t "a";
  Alcotest.(check int) "one" 1 (T.counter t "a");
  T.incr ~by:41 t "a";
  Alcotest.(check int) "accumulates" 42 (T.counter t "a");
  T.add t "a" 0;
  Alcotest.(check int) "zero add is a no-op" 42 (T.counter t "a");
  Alcotest.check_raises "negative increments rejected"
    (Invalid_argument "Telemetry.incr: counters are monotone (by < 0)")
    (fun () -> T.incr ~by:(-1) t "a")

let test_counters_concurrent () =
  let t = T.create () in
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () -> for _ = 1 to 1000 do T.incr t "hits" done))
  in
  List.iter Domain.join domains;
  Alcotest.(check int) "atomic under contention" 4000 (T.counter t "hits")

let test_gauges () =
  let t = T.create () in
  Alcotest.(check bool) "absent" true (T.gauge_value t "depth" = None);
  T.gauge t "depth" 3.;
  T.gauge t "depth" 1.;
  Alcotest.(check bool) "last wins" true (T.gauge_value t "depth" = Some 1.);
  match Json.member "gauges" (T.to_json t) with
  | Some (Json.Obj [ ("depth", g) ]) ->
      Alcotest.(check (float 0.)) "max retained" 3.
        (Json.to_float (Option.get (Json.member "max" g)))
  | _ -> Alcotest.fail "gauge snapshot shape"

let test_histogram_summary () =
  let t = T.create () in
  List.iter (T.observe t "lat") [ 5.; 1.; 4.; 2.; 3. ];
  match T.histogram t "lat" with
  | None -> Alcotest.fail "histogram missing"
  | Some s ->
      Alcotest.(check int) "count" 5 s.count;
      Alcotest.(check (float 0.)) "min" 1. s.min;
      Alcotest.(check (float 0.)) "max" 5. s.max;
      Alcotest.(check (float 1e-9)) "mean" 3. s.mean;
      Alcotest.(check (float 0.)) "p50" 3. s.p50

let test_span_accumulates () =
  let t = T.create () in
  let v = T.span t "work" (fun () -> 7) in
  Alcotest.(check int) "span returns value" 7 v;
  (try T.span t "work" (fun () -> failwith "boom") with Failure _ -> ());
  match Json.member "spans" (T.to_json t) with
  | Some (Json.Obj [ ("work", s) ]) ->
      Alcotest.(check int) "both calls recorded (even the raising one)" 2
        (match Json.member "calls" s with Some (Json.Int n) -> n | _ -> -1)
  | _ -> Alcotest.fail "span snapshot shape"

let test_json_round_trip () =
  let t = T.create () in
  T.incr ~by:7 t "parallel.steals";
  T.gauge t "parallel.domains" 4.;
  List.iter (T.observe t "gibbs.memo_hit_rate") [ 0.25; 0.5; 0.125 ];
  ignore (T.span t "parallel.run" (fun () -> ()));
  let j = T.to_json t in
  let round_tripped = Json.of_string (Json.to_string j) in
  Alcotest.(check bool) "snapshot round-trips through text" true
    (Json.equal j round_tripped);
  (* compact form round-trips too *)
  let compact = Json.of_string (Json.to_string ~pretty:false j) in
  Alcotest.(check bool) "compact round-trips" true (Json.equal j compact)

let test_json_parser () =
  let j =
    Json.of_string
      {| {"a": [1, 2.5, -3e2, true, false, null], "s": "he\"llo\nA"} |}
  in
  (match Json.member "a" j with
  | Some (Json.List [ Json.Int 1; Json.Float 2.5; Json.Float f; Json.Bool true;
                      Json.Bool false; Json.Null ]) ->
      Alcotest.(check (float 0.)) "exponent" (-300.) f
  | _ -> Alcotest.fail "array parse");
  (match Json.member "s" j with
  | Some (Json.String s) -> Alcotest.(check string) "escapes" "he\"llo\nA" s
  | _ -> Alcotest.fail "string parse");
  Alcotest.check_raises "trailing garbage rejected"
    (Json.Parse_error "trailing garbage at offset 5") (fun () ->
      ignore (Json.of_string "null x"))

let test_json_floats_survive () =
  let values = [ 0.1; 1. /. 3.; 1e-9; 12345.678901234567; 1.0; -0.0 ] in
  List.iter
    (fun f ->
      let s = Json.to_string (Json.Float f) in
      match Json.of_string s with
      | Json.Float g -> Alcotest.(check (float 0.)) s f g
      | Json.Int n -> Alcotest.(check (float 0.)) s f (float_of_int n)
      | _ -> Alcotest.fail "float parse")
    values;
  (* non-finite floats degrade to null rather than emitting invalid JSON *)
  Alcotest.(check string) "nan -> null" "null" (Json.to_string (Json.Float Float.nan));
  Alcotest.(check string) "inf -> null" "null" (Json.to_string (Json.Float infinity))

(* --- JSON edge cases (observability PR satellite) -------------------- *)

let parse_fails s =
  match Json.of_string s with
  | exception Json.Parse_error _ -> true
  | _ -> false

let test_json_unicode_escapes () =
  (* control characters are emitted as \uXXXX and must round-trip *)
  let s = "a\x01b\x1fc\ttab\x00nul" in
  let text = Json.to_string (Json.String s) in
  Alcotest.(check bool) "control chars escaped" true
    (Astring_like.contains text "\\u0001");
  (match Json.of_string text with
  | Json.String s' -> Alcotest.(check string) "round-trip" s s'
  | _ -> Alcotest.fail "string parse");
  (* explicit \uXXXX decoding, incl. non-ASCII code points *)
  (match Json.of_string {| "\u0041\u00e9\u4e16" |} with
  | Json.String s' ->
      Alcotest.(check string) "\\uXXXX -> utf-8" "A\xc3\xa9\xe4\xb8\x96" s'
  | _ -> Alcotest.fail "unicode parse");
  (* malformed escapes are parse errors, not silent corruption *)
  List.iter
    (fun bad ->
      Alcotest.(check bool) (Printf.sprintf "rejects %s" bad) true
        (parse_fails bad))
    [ {| "\u00" |}; {| "\u00g1" |}; {| "\u |}; {| "\q" |}; {| "unterminated |} ]

let test_json_deep_nesting () =
  let depth = 500 in
  let text =
    String.concat "" (List.init depth (fun _ -> "["))
    ^ "1"
    ^ String.concat "" (List.init depth (fun _ -> "]"))
  in
  let rec unwrap n j =
    if n = 0 then j
    else
      match j with
      | Json.List [ inner ] -> unwrap (n - 1) inner
      | _ -> Alcotest.fail "nesting shape"
  in
  (match unwrap depth (Json.of_string text) with
  | Json.Int 1 -> ()
  | _ -> Alcotest.fail "innermost value");
  (* unbalanced nesting is rejected *)
  Alcotest.(check bool) "unbalanced rejected" true (parse_fails "[[1]")

let test_json_nonfinite_in_structures () =
  (* non-finite floats degrade to null even when nested, so any emitted
     document (e.g. a Perfetto trace with a nan counter) stays parseable *)
  let j =
    Json.Obj
      [ ("a", Json.List [ Json.Float Float.nan; Json.Float neg_infinity ]);
        ("b", Json.Float 1.5) ]
  in
  match Json.of_string (Json.to_string j) with
  | Json.Obj [ ("a", Json.List [ Json.Null; Json.Null ]); ("b", b) ] ->
      Alcotest.(check (float 0.)) "finite survives" 1.5 (Json.to_float b)
  | _ -> Alcotest.fail "non-finite should become null"

(* --- Algorithm-R reservoir (observability PR satellite) -------------- *)

let test_reservoir_deterministic () =
  let fill t =
    for i = 1 to 50_000 do
      T.observe t "m" (float_of_int i)
    done
  in
  let a = T.create () and b = T.create () in
  fill a;
  fill b;
  match (T.histogram a "m", T.histogram b "m") with
  | Some sa, Some sb ->
      Alcotest.(check int) "count" 50_000 sa.count;
      Alcotest.(check (float 0.)) "p50 identical" sa.p50 sb.p50;
      Alcotest.(check (float 0.)) "p99 identical" sa.p99 sb.p99;
      Alcotest.(check (float 0.)) "mean identical" sa.mean sb.mean
  | _ -> Alcotest.fail "histogram missing"

let test_reservoir_unbiased () =
  (* Observe 0..99_999 in order. A first-N-kept histogram would report
     p50 ~ 4096 (half the 8192-entry window); Algorithm R keeps a uniform
     sample of the whole stream, so p50 must sit near 50_000. *)
  let t = T.create () in
  let n = 100_000 in
  for i = 0 to n - 1 do
    T.observe t "stream" (float_of_int i)
  done;
  match T.histogram t "stream" with
  | None -> Alcotest.fail "histogram missing"
  | Some s ->
      Alcotest.(check int) "count sees whole stream" n s.count;
      Alcotest.(check (float 0.)) "min exact" 0. s.min;
      Alcotest.(check (float 0.)) "max exact" (float_of_int (n - 1)) s.max;
      let mid = float_of_int n /. 2. in
      Alcotest.(check bool)
        (Printf.sprintf "p50 %.0f within 5%% of %.0f" s.p50 mid)
        true
        (Float.abs (s.p50 -. mid) < 0.05 *. float_of_int n);
      Alcotest.(check bool)
        (Printf.sprintf "p90 %.0f near %.0f" s.p90 (0.9 *. float_of_int n))
        true
        (Float.abs (s.p90 -. (0.9 *. float_of_int n)) < 0.05 *. float_of_int n)

let test_reset () =
  let t = T.create () in
  T.incr t "a";
  T.reset t;
  Alcotest.(check int) "counters dropped" 0 (T.counter t "a")

let suite =
  [
    ("counters monotone", `Quick, test_counters_monotone);
    ("counters atomic across domains", `Quick, test_counters_concurrent);
    ("gauges last + max", `Quick, test_gauges);
    ("histogram summary", `Quick, test_histogram_summary);
    ("span accumulates", `Quick, test_span_accumulates);
    ("JSON round-trip", `Quick, test_json_round_trip);
    ("JSON parser", `Quick, test_json_parser);
    ("JSON floats survive", `Quick, test_json_floats_survive);
    ("JSON unicode escapes", `Quick, test_json_unicode_escapes);
    ("JSON deep nesting", `Quick, test_json_deep_nesting);
    ("JSON non-finite in structures", `Quick, test_json_nonfinite_in_structures);
    ("reservoir deterministic", `Quick, test_reservoir_deterministic);
    ("reservoir unbiased (Algorithm R)", `Quick, test_reservoir_unbiased);
    ("reset", `Quick, test_reset);
  ]
