(* Posterior_cache: evidence keys, signature restriction to the
   lattice-relevant context, hit/miss/eviction accounting, model-epoch
   invalidation, prewarm request dedup, fault-injection bypass, and the
   headline guarantee — cached runs are bit-identical to uncached runs
   at any domain count. *)

open Helpers

(* Fixture: a0 and a1 strongly correlated (so each appears in the
   other's rule bodies), a2 a high-cardinality iid noise attribute whose
   itemsets fall below the support threshold — lattice-irrelevant, hence
   absent from every evidence signature. *)
let fixture_points n =
  let r = rng () in
  Array.init n (fun _ ->
      let a0 = Prob.Rng.int r 2 in
      let a1 = if Prob.Rng.float r < 0.9 then a0 else 1 - a0 in
      [| a0; a1; Prob.Rng.int r 8 |])

let fixture_schema = Relation.Schema.of_cardinalities [ 2; 2; 8 ]

let fixture_model ?(points = fixture_points 400) () =
  Mrsl.Model.learn_points
    ~params:{ Mrsl.Model.default_params with support_threshold = 0.15 }
    fixture_schema points

let registry () = Mrsl.Telemetry.create ()

let estimates_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (ta, (ea : Mrsl.Gibbs.estimate)) (tb, (eb : Mrsl.Gibbs.estimate)) ->
         Relation.Tuple.equal ta tb
         && ea.samples_used = eb.samples_used
         && (ea.joint :> float array) = (eb.joint :> float array))
       a b

(* --- evidence codes --------------------------------------------------- *)

let test_tuple_code_full_traversal () =
  (* The seed keyed fault sites with [Stdlib.Hashtbl.hash], whose bounded
     traversal ignores the tail of wide tuples. The mixed-radix code must
     distinguish tuples that differ only in their last cell. *)
  let arity = 48 in
  let cards = Array.make arity 3 in
  let base = Array.init arity (fun _ -> Some 0) in
  let code v =
    let t = Array.copy base in
    t.(arity - 1) <- Some v;
    Mrsl.Posterior_cache.tuple_code ~cards t
  in
  Alcotest.(check bool) "tail cell distinguishes codes" true
    (code 0 <> code 1 && code 1 <> code 2 && code 0 <> code 2);
  (* Missing vs value 0 must also differ. *)
  let t_missing = Array.copy base in
  t_missing.(arity - 1) <- None;
  Alcotest.(check bool) "missing distinct from value" true
    (Mrsl.Posterior_cache.tuple_code ~cards t_missing <> code 0);
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Posterior_cache.tuple_code: cards/tuple arity mismatch")
    (fun () ->
      ignore (Mrsl.Posterior_cache.tuple_code ~cards:[| 2 |] base))

let test_evidence_key_attr_sensitive () =
  let cards = [| 2; 2; 8 |] in
  let t = [| None; Some 1; Some 3 |] in
  Alcotest.(check bool) "attr index is part of the key" true
    (Mrsl.Posterior_cache.evidence_key ~cards t 0
    <> Mrsl.Posterior_cache.evidence_key ~cards t 1)

let test_method_code_injective () =
  let codes = List.map Mrsl.Posterior_cache.method_code Mrsl.Voting.all_methods in
  Alcotest.(check int) "four distinct method codes" 4
    (List.length (List.sort_uniq compare codes))

let test_signature_lattice_relevant_only () =
  let model = fixture_model () in
  (* The noise attribute never reaches a rule body... *)
  Array.iter
    (fun a ->
      Alcotest.(check bool)
        (Printf.sprintf "attr 2 not in body_attrs of lattice %d" a)
        false
        (Array.exists (Int.equal 2)
           (Mrsl.Lattice.body_attrs (Mrsl.Model.lattice model a))))
    [| 0; 1 |];
  (* ...so tuples that differ only there share a signature — and the
     posterior really is bit-identical, which is what licenses the
     cache. *)
  let t1 = [| None; Some 1; Some 3 |] and t2 = [| None; Some 1; Some 7 |] in
  Alcotest.(check (array int)) "signatures equal"
    (Mrsl.Posterior_cache.signature model t1 0)
    (Mrsl.Posterior_cache.signature model t2 0);
  let d1 = Mrsl.Infer_single.infer model t1 0 in
  let d2 = Mrsl.Infer_single.infer model t2 0 in
  Alcotest.(check bool) "posteriors bit-identical" true
    ((d1 :> float array) = (d2 :> float array));
  (* A lattice-relevant cell does change the signature. *)
  let t3 = [| None; Some 0; Some 3 |] in
  Alcotest.(check bool) "body attr changes signature" true
    (Mrsl.Posterior_cache.signature model t1 0
    <> Mrsl.Posterior_cache.signature model t3 0)

(* --- accounting ------------------------------------------------------- *)

let test_hit_miss_accounting () =
  let model = fixture_model () in
  let cache = Mrsl.Posterior_cache.create ~telemetry:(registry ()) () in
  let calls = ref 0 in
  let method_ = Mrsl.Voting.best_averaged in
  let lookup tup a =
    Mrsl.Posterior_cache.find_or_compute cache model ~method_ tup a (fun () ->
        incr calls;
        Mrsl.Infer_single.infer ~method_ model tup a)
  in
  let t1 = [| None; Some 1; Some 3 |] in
  let t1' = [| None; Some 1; Some 5 |] (* same signature: noise differs *) in
  let t2 = [| None; Some 0; Some 3 |] (* different signature *) in
  let d_first = lookup t1 0 in
  let d_hit = lookup t1' 0 in
  ignore (lookup t2 0);
  ignore (lookup t1 0);
  let st = Mrsl.Posterior_cache.stats cache in
  Alcotest.(check int) "computed once per signature" 2 !calls;
  Alcotest.(check int) "misses" 2 st.misses;
  Alcotest.(check int) "hits" 2 st.hits;
  Alcotest.(check int) "entries" 2 st.entries;
  Alcotest.(check bool) "bytes accounted" true (st.bytes > 0);
  Alcotest.(check bool) "hit serves the stored distribution" true
    ((d_hit :> float array) = (d_first :> float array));
  Alcotest.(check (float 1e-9)) "hit_rate" 0.5
    (Mrsl.Posterior_cache.hit_rate cache);
  Mrsl.Posterior_cache.clear cache;
  let st = Mrsl.Posterior_cache.stats cache in
  Alcotest.(check int) "clear drops entries" 0 st.entries;
  Alcotest.(check int) "clear drops bytes" 0 st.bytes

let test_lru_eviction_under_budget () =
  let model = fixture_model () in
  (* One shard, a budget of ~2 entries: filling the signature space must
     evict least-recently-used entries instead of growing. *)
  let cache =
    Mrsl.Posterior_cache.create ~shards:1 ~max_bytes:400
      ~telemetry:(registry ()) ()
  in
  let method_ = Mrsl.Voting.best_averaged in
  let lookup tup a =
    ignore
      (Mrsl.Posterior_cache.find_or_compute cache model ~method_ tup a
         (fun () -> Mrsl.Infer_single.infer ~method_ model tup a))
  in
  (* Distinct signatures: vary the known body cell and the target attr. *)
  List.iter
    (fun (e, a) ->
      let t = Array.make 3 None in
      t.(1 - a) <- Some e;
      lookup t a)
    [ (0, 0); (1, 0); (0, 1); (1, 1) ];
  let st = Mrsl.Posterior_cache.stats cache in
  Alcotest.(check bool) "evictions happened" true (st.evictions > 0);
  Alcotest.(check bool) "stayed within budget" true (st.bytes <= 400);
  Alcotest.(check int) "entries + evictions = misses" st.misses
    (st.entries + st.evictions)

let test_epoch_invalidation () =
  let points = fixture_points 400 in
  let model_a = fixture_model ~points () in
  let model_b = fixture_model ~points () (* same data, fresh epoch *) in
  Alcotest.(check bool) "epochs differ" true
    (Mrsl.Model.epoch model_a <> Mrsl.Model.epoch model_b);
  let cache = Mrsl.Posterior_cache.create ~telemetry:(registry ()) () in
  let method_ = Mrsl.Voting.best_averaged in
  let calls = ref 0 in
  let lookup model tup a =
    ignore
      (Mrsl.Posterior_cache.find_or_compute cache model ~method_ tup a
         (fun () ->
           incr calls;
           Mrsl.Infer_single.infer ~method_ model tup a))
  in
  let t = [| None; Some 1; Some 3 |] in
  lookup model_a t 0;
  lookup model_a t 0;
  Alcotest.(check int) "one compute for model A" 1 !calls;
  (* The rebuilt model must never be served model A's posterior. *)
  lookup model_b t 0;
  Alcotest.(check int) "rebuild recomputes" 2 !calls;
  let st = Mrsl.Posterior_cache.stats cache in
  Alcotest.(check int) "both epochs resident" 2 st.entries;
  Mrsl.Posterior_cache.invalidate_stale cache ~current:model_b;
  let st = Mrsl.Posterior_cache.stats cache in
  Alcotest.(check int) "stale epoch reclaimed" 1 st.entries;
  lookup model_b t 0;
  Alcotest.(check int) "current epoch survives" 2 !calls

(* --- prewarm / request dedup ----------------------------------------- *)

let test_prewarm_dedup_fanout () =
  let model = fixture_model () in
  let cache = Mrsl.Posterior_cache.create ~telemetry:(registry ()) () in
  let method_ = Mrsl.Voting.best_averaged in
  let calls = ref 0 in
  (* Four tuples, five (tuple, attr) tasks; t1/t2/t4 share the a0 task's
     signature (noise-only differences), so distinct = 3:
     {a0 | a1=1}, {a1 | a0=0}, {a0 | a1=0}. *)
  let workload =
    [
      [| None; Some 1; Some 3 |];
      [| None; Some 1; Some 7 |];
      [| Some 0; None; Some 2 |];
      [| None; Some 1; Some 0 |];
      [| None; Some 0; Some 1 |];
    ]
  in
  let distinct, fanout =
    Mrsl.Posterior_cache.prewarm cache model ~method_
      ~compute:(fun tup a ->
        incr calls;
        Mrsl.Infer_single.infer ~method_ model tup a)
      workload
  in
  Alcotest.(check int) "distinct signatures" 3 distinct;
  Alcotest.(check int) "fanout" 2 fanout;
  Alcotest.(check int) "compute once per signature" 3 !calls;
  let st = Mrsl.Posterior_cache.stats cache in
  Alcotest.(check int) "dedup_fanout accumulated" 2 st.dedup_fanout;
  Alcotest.(check int) "entries stored" 3 st.entries;
  (* The run's own lookups are now all hits. *)
  List.iter
    (fun tup ->
      List.iter
        (fun a ->
          ignore
            (Mrsl.Posterior_cache.find_or_compute cache model ~method_ tup a
               (fun () -> Alcotest.fail "prewarmed lookup recomputed")))
        (Relation.Tuple.missing tup))
    workload

let test_workload_run_counts_fanout () =
  let model = fixture_model () in
  let telemetry = registry () in
  let cache = Mrsl.Posterior_cache.create ~telemetry () in
  let workload =
    List.init 12 (fun i -> [| None; Some (i land 1); Some (i mod 8) |])
  in
  ignore
    (Mrsl.Workload.run
       ~config:{ Mrsl.Gibbs.burn_in = 5; samples = 20 }
       ~telemetry (rng ())
       (Mrsl.Gibbs.sampler ~cache model)
       workload);
  let st = Mrsl.Posterior_cache.stats cache in
  Alcotest.(check bool) "workload prewarm deduped" true (st.dedup_fanout > 0);
  Alcotest.(check bool) "sampling hit the cache" true (st.hits > 0);
  Alcotest.(check int) "telemetry fanout counter matches" st.dedup_fanout
    (Mrsl.Telemetry.counter telemetry "cache.dedup_fanout")

(* --- fault-injection bypass ------------------------------------------ *)

let test_voter_drop_bypasses_cache () =
  let model = fixture_model () in
  let cache = Mrsl.Posterior_cache.create ~telemetry:(registry ()) () in
  let method_ = Mrsl.Voting.best_averaged in
  let t = [| None; Some 1; Some 3 |] in
  let calls = ref 0 in
  let lookup () =
    ignore
      (Mrsl.Posterior_cache.find_or_compute cache model ~method_ t 0
         (fun () ->
           incr calls;
           Mrsl.Infer_single.infer ~method_ model t 0))
  in
  Mrsl.Fault_inject.with_config
    { Mrsl.Fault_inject.disabled with seed = 7; voter_drop_rate = 1.0 }
    (fun () ->
      lookup ();
      lookup ();
      Alcotest.(check (pair int int)) "prewarm is a no-op under voter drops"
        (0, 0)
        (Mrsl.Posterior_cache.prewarm cache model ~method_
           ~compute:(fun tup a -> Mrsl.Infer_single.infer ~method_ model tup a)
           [ t ]));
  Alcotest.(check int) "every bypassed lookup recomputed" 2 !calls;
  let st = Mrsl.Posterior_cache.stats cache in
  Alcotest.(check int) "nothing stored" 0 st.entries;
  Alcotest.(check int) "nothing counted as hit" 0 st.hits;
  Alcotest.(check int) "nothing counted as miss" 0 st.misses;
  (* Clean runs after the fault window start from an empty cache — no
     degraded posterior can have leaked in. *)
  lookup ();
  Alcotest.(check int) "post-fault lookup computes cleanly" 3 !calls;
  Alcotest.(check int) "and is now cached"
    1
    (Mrsl.Posterior_cache.stats cache).entries

(* --- bit-identity ------------------------------------------------------ *)

let test_sequential_cached_uncached_identical () =
  let model = fixture_model () in
  let workload =
    List.init 10 (fun i ->
        if i land 1 = 0 then [| None; Some (i land 2 / 2); Some (i mod 8) |]
        else [| None; None; Some (i mod 8) |])
  in
  let config = { Mrsl.Gibbs.burn_in = 5; samples = 25 } in
  let run sampler =
    (Mrsl.Workload.run ~config ~telemetry:(registry ())
       (Prob.Rng.create 11) sampler workload)
      .estimates
  in
  let plain = run (Mrsl.Gibbs.sampler model) in
  let cache = Mrsl.Posterior_cache.create ~telemetry:(registry ()) () in
  let cached = run (Mrsl.Gibbs.sampler ~cache model) in
  let rewarmed = run (Mrsl.Gibbs.sampler ~cache model) in
  Alcotest.(check bool) "cache produced hits" true
    ((Mrsl.Posterior_cache.stats cache).hits > 0);
  Alcotest.(check bool) "cold cache bit-identical" true
    (estimates_equal plain cached);
  Alcotest.(check bool) "warm cache bit-identical" true
    (estimates_equal plain rewarmed)

let test_parallel_cached_uncached_identical_across_domains () =
  let model = fixture_model () in
  let workload =
    List.init 9 (fun i ->
        if i mod 3 = 0 then [| None; None; Some (i mod 8) |]
        else [| None; Some (i land 1); Some (i mod 8) |])
  in
  let config = { Mrsl.Gibbs.burn_in = 5; samples = 25 } in
  let baseline =
    (Mrsl.Parallel.run ~config ~domains:1 ~telemetry:(registry ()) ~seed:5
       model workload)
      .estimates
  in
  List.iter
    (fun domains ->
      let cache = Mrsl.Posterior_cache.create ~telemetry:(registry ()) () in
      let cached =
        (Mrsl.Parallel.run ~config ~cache ~domains ~telemetry:(registry ())
           ~seed:5 model workload)
          .estimates
      in
      Alcotest.(check bool)
        (Printf.sprintf "cache.hits > 0 at domains=%d" domains)
        true
        ((Mrsl.Posterior_cache.stats cache).hits > 0);
      Alcotest.(check bool)
        (Printf.sprintf "bit-identical at domains=%d" domains)
        true
        (estimates_equal baseline cached))
    [ 1; 2; 4 ]

let suite =
  [
    ("tuple_code full traversal", `Quick, test_tuple_code_full_traversal);
    ("evidence_key attr-sensitive", `Quick, test_evidence_key_attr_sensitive);
    ("method_code injective", `Quick, test_method_code_injective);
    ("signature = lattice-relevant cells", `Quick,
     test_signature_lattice_relevant_only);
    ("hit/miss accounting", `Quick, test_hit_miss_accounting);
    ("LRU eviction under byte budget", `Quick, test_lru_eviction_under_budget);
    ("model-epoch invalidation", `Quick, test_epoch_invalidation);
    ("prewarm dedup fanout", `Quick, test_prewarm_dedup_fanout);
    ("workload run counts fanout", `Quick, test_workload_run_counts_fanout);
    ("voter drops bypass the cache", `Quick, test_voter_drop_bypasses_cache);
    ("sequential cached = uncached", `Quick,
     test_sequential_cached_uncached_identical);
    ("parallel cached = uncached at 1/2/4 domains", `Quick,
     test_parallel_cached_uncached_identical_across_domains);
  ]
