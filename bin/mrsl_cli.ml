(* mrsl — command-line interface to the MRSL reproduction.

   Subcommands:
     generate    sample a catalog Bayesian network into a CSV (optionally
                 masking values, producing an incomplete relation)
     learn       learn an MRSL model from a CSV and summarize it
     infer       derive probability distributions for the incomplete tuples
                 of a CSV (the paper's end-to-end pipeline)
     query       derive a probabilistic database and answer a conjunctive
                 query (expected count + existence probability)
     quality     shadow-masked calibration scores, drift, and ensemble
                 health for a CSV (the online face of Section VI)
     experiment  regenerate one of the paper's tables/figures *)

open Cmdliner

let scale = Experiments.Scale.current ()

(* ---------------- common arguments ---------------- *)

let seed_arg =
  let doc = "Random seed (all commands are deterministic given the seed)." in
  Arg.(value & opt int 2011 & info [ "seed" ] ~doc)

(* Validated at the cmdliner layer so a bad value is a usage error
   (like every other argument here), not an uncaught Failure. *)
let positive_int =
  let parse s =
    match int_of_string_opt s with
    | Some v when v >= 1 -> Ok v
    | Some _ | None ->
        Error (`Msg (Printf.sprintf "expected a positive integer, got %S" s))
  in
  Arg.conv ~docv:"N" (parse, Format.pp_print_int)

let support_arg =
  let doc = "Support threshold θ for frequent-itemset mining." in
  Arg.(value & opt float 0.02 & info [ "support" ] ~doc ~docv:"THETA")

let max_itemsets_arg =
  let doc = "Apriori per-round cap on frequent itemsets (paper: 1000)." in
  Arg.(value & opt int 1000 & info [ "max-itemsets" ] ~doc)

let input_arg =
  let doc = "Input CSV file (header row; \"?\" marks missing values)." in
  Arg.(required & opt (some file) None & info [ "i"; "input" ] ~doc ~docv:"CSV")

let miner_arg =
  let doc = "Frequent-itemset miner: apriori or fp-growth." in
  let parse s =
    match String.lowercase_ascii s with
    | "apriori" -> Ok Mrsl.Model.Apriori
    | "fp-growth" | "fpgrowth" | "fp" -> Ok Mrsl.Model.Fp_growth
    | _ -> Error (`Msg (Printf.sprintf "unknown miner %S" s))
  in
  let print ppf = function
    | Mrsl.Model.Apriori -> Format.pp_print_string ppf "apriori"
    | Mrsl.Model.Fp_growth -> Format.pp_print_string ppf "fp-growth"
  in
  Arg.(
    value
    & opt (conv (parse, print)) Mrsl.Model.Apriori
    & info [ "miner" ] ~doc)

let params_of ?(miner = Mrsl.Model.Apriori) support max_itemsets =
  {
    Mrsl.Model.default_params with
    support_threshold = support;
    max_itemsets;
    miner;
  }

let trace_arg =
  let doc =
    "Record an event-level trace of the run (mining, lattice builds, \
     Gibbs chains, scheduler steals, convergence timeline) and write it \
     as Chrome trace-event JSON to $(docv) — loadable in Perfetto \
     (ui.perfetto.dev) or chrome://tracing, and summarized by \
     $(b,mrsl trace)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~doc ~docv:"FILE")

let prometheus_arg =
  let doc =
    "After the run, write the telemetry registry (counters, gauges, \
     histograms, spans) as Prometheus text exposition to $(docv)."
  in
  Arg.(
    value & opt (some string) None & info [ "prometheus" ] ~doc ~docv:"FILE")

let kernel_arg =
  let on =
    Arg.info [ "kernel" ]
      ~doc:
        "Use the compiled per-epoch inference kernels (flat-array voting \
         over the mined lattices). Compiled posteriors are bit-identical \
         to the interpreted path, which remains available as the oracle. \
         Enabled by default."
  in
  let off =
    Arg.info [ "no-kernel" ]
      ~doc:
        "Disable the compiled kernels and run the interpreted \
         rule-lattice path for every posterior."
  in
  Arg.(value & vflag true [ (true, on); (false, off) ])

(* Run [f] under a freshly installed trace sink when [path] is given,
   writing Chrome trace JSON on the way out (exceptions included — a
   partial trace of a failed run is exactly when you want one). *)
let with_trace path f =
  match path with
  | None -> f ()
  | Some path -> (
      let sink = Mrsl.Trace.create () in
      Mrsl.Trace.install sink;
      match f () with
      | result ->
          ignore (Mrsl.Trace.uninstall ());
          Mrsl.Trace.write_chrome sink path;
          Printf.eprintf "trace: %d events (%d dropped) -> %s\n%!"
            (Mrsl.Trace.event_count sink)
            (Mrsl.Trace.dropped sink) path;
          result
      | exception e ->
          ignore (Mrsl.Trace.uninstall ());
          Mrsl.Trace.write_chrome sink path;
          raise e)

let write_prometheus path =
  match path with
  | None -> ()
  | Some path ->
      Out_channel.with_open_bin path (fun oc ->
          output_string oc
            (Mrsl.Trace.prometheus_exposition Mrsl.Telemetry.global));
      Printf.eprintf "metrics: Prometheus exposition -> %s\n%!" path

let method_arg =
  let doc =
    "Voting method: all-averaged, all-weighted, best-averaged, best-weighted."
  in
  let parse s =
    match Mrsl.Voting.method_of_string s with
    | Some m -> Ok m
    | None -> Error (`Msg (Printf.sprintf "unknown voting method %S" s))
  in
  let print ppf m = Format.pp_print_string ppf (Mrsl.Voting.method_name m) in
  Arg.(
    value
    & opt (conv (parse, print)) Mrsl.Voting.best_averaged
    & info [ "method" ] ~doc ~docv:"METHOD")

(* ---------------- generate ---------------- *)

let generate_cmd =
  let network_arg =
    let doc = "Catalog network id (BN1 … BN20); see `experiment table1'." in
    Arg.(value & opt string "BN8" & info [ "network" ] ~doc)
  in
  let size_arg =
    let doc = "Number of tuples to sample." in
    Arg.(value & opt int 1000 & info [ "n"; "size" ] ~doc)
  in
  let mask_arg =
    let doc =
      "Fraction of tuples to make incomplete (uniformly chosen attributes)."
    in
    Arg.(value & opt float 0. & info [ "mask-fraction" ] ~doc)
  in
  let max_missing_arg =
    let doc = "Maximum missing values per masked tuple." in
    Arg.(value & opt int 2 & info [ "max-missing" ] ~doc)
  in
  let output_arg =
    let doc = "Output CSV path (stdout when omitted)." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc)
  in
  let run network size mask_fraction max_missing output seed =
    match Bayesnet.Catalog.find network with
    | exception Not_found ->
        Printf.eprintf "unknown network %s (BN1..BN20)\n" network;
        exit 1
    | entry ->
        let rng = Prob.Rng.create seed in
        let net = Bayesnet.Network.generate rng ~alpha:scale.alpha entry.topology in
        let inst = Bayesnet.Network.sample_instance rng net size in
        let inst =
          if mask_fraction <= 0. then inst
          else begin
            let tuples = Relation.Instance.tuples inst in
            let n_mask =
              int_of_float (mask_fraction *. float_of_int (Array.length tuples))
            in
            let victims =
              Prob.Rng.sample_without_replacement rng n_mask
                (Array.length tuples)
            in
            let arity = Relation.Schema.arity (Relation.Instance.schema inst) in
            List.iter
              (fun i ->
                let k = 1 + Prob.Rng.int rng (min max_missing (arity - 1)) in
                let blanks = Prob.Rng.sample_without_replacement rng k arity in
                List.iter (fun a -> tuples.(i).(a) <- None) blanks)
              victims;
            Relation.Instance.make
              (Relation.Instance.schema inst)
              (Array.to_list tuples)
          end
        in
        let text = Relation.Csv_io.write_string inst in
        (match output with
        | Some path ->
            Out_channel.with_open_bin path (fun oc -> output_string oc text);
            Printf.printf "wrote %d tuples over %s to %s\n"
              (Relation.Instance.size inst) network path
        | None -> print_string text)
  in
  let info =
    Cmd.info "generate" ~doc:"Sample a catalog Bayesian network into a CSV."
  in
  Cmd.v info
    Term.(
      const run $ network_arg $ size_arg $ mask_arg $ max_missing_arg
      $ output_arg $ seed_arg)

(* ---------------- learn ---------------- *)

let learn_cmd =
  let verbose_arg =
    let doc = "Print every meta-rule of every lattice." in
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc)
  in
  let save_arg =
    let doc = "Serialize the learned model to this path (see `infer --model')." in
    Arg.(value & opt (some string) None & info [ "o"; "save-model" ] ~doc)
  in
  let run input support max_itemsets miner verbose save =
    let inst = Relation.Csv_io.read_file input in
    let params = params_of ~miner support max_itemsets in
    let model, seconds =
      Experiments.Framework.time (fun () -> Mrsl.Model.learn ~params inst)
    in
    let schema = Mrsl.Model.schema model in
    Printf.printf
      "learned MRSL model from %d complete tuples (of %d) in %.3fs\n"
      (Array.length (Relation.Instance.complete_part inst))
      (Relation.Instance.size inst)
      seconds;
    Printf.printf "model size: %d meta-rules over %d attributes%s\n"
      (Mrsl.Model.size model)
      (Relation.Schema.arity schema)
      (if Mrsl.Model.truncated model then " (mining truncated by cap)" else "");
    Array.iteri
      (fun i l ->
        Printf.printf "  %-12s %5d meta-rules, max body %d\n"
          (Relation.Attribute.name (Relation.Schema.attribute schema i))
          (Mrsl.Lattice.size l) (Mrsl.Lattice.max_body_size l))
      (Mrsl.Model.lattices model);
    if verbose then Format.printf "%a@." Mrsl.Model.pp model;
    match save with
    | Some path ->
        Mrsl.Model_io.save path model;
        Printf.printf "model saved to %s\n" path
    | None -> ()
  in
  let info = Cmd.info "learn" ~doc:"Learn an MRSL model from a CSV file." in
  Cmd.v info
    Term.(
      const run $ input_arg $ support_arg $ max_itemsets_arg $ miner_arg
      $ verbose_arg $ save_arg)

(* ---------------- infer ---------------- *)

let strategy_arg =
  let doc = "Sampling strategy: tuple-dag, tuple-at-a-time, all-at-a-time." in
  let parse s =
    match String.lowercase_ascii s with
    | "tuple-dag" | "dag" -> Ok Mrsl.Workload.Tuple_dag
    | "tuple-at-a-time" | "tuple" -> Ok Mrsl.Workload.Tuple_at_a_time
    | "all-at-a-time" | "all" -> Ok Mrsl.Workload.All_at_a_time
    | _ -> Error (`Msg (Printf.sprintf "unknown strategy %S" s))
  in
  let print ppf s = Format.pp_print_string ppf (Mrsl.Workload.strategy_name s) in
  Arg.(
    value
    & opt (conv (parse, print)) Mrsl.Workload.Tuple_dag
    & info [ "strategy" ] ~doc)

let samples_arg =
  let doc = "Gibbs samples per tuple (N)." in
  Arg.(value & opt int 1000 & info [ "samples" ] ~doc)

let burn_in_arg =
  let doc = "Gibbs burn-in sweeps per chain (B)." in
  Arg.(value & opt int 100 & info [ "burn-in" ] ~doc)

let top_arg =
  let doc = "Print at most this many completions per tuple." in
  Arg.(value & opt int 5 & info [ "top" ] ~doc)

let infer_cmd =
  let model_arg =
    let doc =
      "Load a previously saved model instead of learning from the input \
       (the CSV must use the same schema)."
    in
    Arg.(value & opt (some file) None & info [ "model" ] ~doc)
  in
  let lenient_arg =
    let doc =
      "Tolerate malformed CSV rows: skip them, report each on stderr with \
       file:line and cause, and infer from the surviving rows (default: \
       the first malformed row aborts the load)."
    in
    Arg.(value & flag & info [ "lenient" ] ~doc)
  in
  let domains_arg =
    let doc =
      "Run inference on this many domains with the work-stealing scheduler \
       (results are bit-identical for any value given the seed)."
    in
    Arg.(value & opt (some int) None & info [ "domains" ] ~doc ~docv:"N")
  in
  let on_fault_arg =
    let doc =
      "Per-tuple fault policy under --domains: $(b,fail) aborts on the \
       first task error; $(b,skip) contains it to the tuple, skips its \
       dependents, and reports them after the surviving estimates."
    in
    Arg.(
      value
      & opt (enum [ ("fail", `Fail); ("skip", `Skip) ]) `Fail
      & info [ "on-fault" ] ~doc ~docv:"POLICY")
  in
  let retry_arg =
    let doc =
      "Check split R-hat convergence per tuple and retry non-converged \
       chains with doubled draws (bounded by the default retry policy); \
       tuples still unconverged after the budget are flagged."
    in
    Arg.(value & flag & info [ "retry" ] ~doc)
  in
  let cache_arg =
    let on =
      Arg.info [ "cache" ]
        ~doc:
          "Memoize single-missing-value posteriors by evidence signature \
           (model epoch + attribute + lattice-relevant known cells) and \
           dedup identical inference requests across the workload. Cached \
           output is bit-identical to uncached output. Enabled by default."
    in
    let off =
      Arg.info [ "no-cache" ]
        ~doc:"Disable the evidence-keyed posterior cache."
    in
    Arg.(value & vflag true [ (true, on); (false, off) ])
  in
  let cache_mb_arg =
    let doc = "Posterior-cache byte budget, in MiB (LRU-evicted beyond it)." in
    Arg.(value & opt positive_int 64 & info [ "cache-mb" ] ~doc ~docv:"MB")
  in
  let print_estimate schema top (tup, est) =
    let block = Probdb.Block.of_estimate est in
    Format.printf "%a:@." (Relation.Tuple.pp schema) tup;
    List.iteri
      (fun i (a : Probdb.Block.alternative) ->
        if i < top then
          Format.printf "  %a  prob %.4f@."
            (Relation.Tuple.pp schema)
            (Relation.Tuple.of_point a.point)
            a.prob)
      block.alternatives;
    if Probdb.Block.alternative_count block > top then
      Format.printf "  … (%d more completions)@."
        (Probdb.Block.alternative_count block - top)
  in
  let run input support max_itemsets method_ strategy samples burn_in top
      model_path lenient domains on_fault retry use_cache cache_mb use_kernel
      trace prometheus seed =
    Mrsl.Kernel.set_enabled use_kernel;
    with_trace trace @@ fun () ->
    Fun.protect ~finally:(fun () -> write_prometheus prometheus) @@ fun () ->
    let inst =
      Mrsl.Trace.complete ~cat:"io"
        ~args:[ ("file", Mrsl.Trace.Str input) ]
        "csv.read"
      @@ fun () ->
      if lenient then begin
        let inst, row_errors = Relation.Csv_io.read_file_lenient input in
        List.iter
          (fun e ->
            Printf.eprintf "skipped: %s\n"
              (Relation.Csv_io.row_error_to_string e))
          row_errors;
        if row_errors <> [] then
          Printf.eprintf "%d malformed rows skipped\n"
            (List.length row_errors);
        inst
      end
      else Relation.Csv_io.read_file input
    in
    let schema = Relation.Instance.schema inst in
    let params = params_of support max_itemsets in
    let model =
      match model_path with
      | Some path ->
          let m = Mrsl.Model_io.load path in
          if not (Relation.Schema.equal (Mrsl.Model.schema m) schema) then begin
            Printf.eprintf
              "model schema does not match the input CSV; re-run learn\n";
            exit 1
          end;
          m
      | None -> Mrsl.Model.learn ~params inst
    in
    let incomplete = Array.to_list (Relation.Instance.incomplete_part inst) in
    if incomplete = [] then print_endline "no incomplete tuples to infer"
    else begin
      let config = { Mrsl.Gibbs.burn_in; samples } in
      let cache =
        if use_cache then
          Some
            (Mrsl.Posterior_cache.create
               ~max_bytes:(cache_mb * 1024 * 1024)
               ())
        else None
      in
      if retry then begin
        (* Convergence-checked sequential path: one chain per distinct
           tuple, retried with doubled draws while split R-hat exceeds
           the threshold and the budget lasts. *)
        let sampler = Mrsl.Gibbs.sampler ~method_ ?cache model in
        let rng = Prob.Rng.create seed in
        let distinct = List.sort_uniq compare incomplete in
        Printf.printf
          "inferring %d distinct incomplete tuples with convergence \
           retries\n\n"
          (List.length distinct);
        List.iter
          (fun tup ->
            let checked =
              Mrsl.Diagnostics.run_with_retries ~config rng sampler tup
            in
            print_estimate schema top (tup, checked.estimate);
            Format.printf "  R-hat %.4f after %d attempt%s (%d sweeps)%s@."
              checked.rhat checked.attempts
              (if checked.attempts = 1 then "" else "s")
              checked.total_sweeps
              (if checked.converged then ""
               else "  ** NOT converged: budget exhausted **"))
          distinct
      end
      else
        match domains with
        | Some d ->
            let policy =
              match on_fault with
              | `Fail -> Mrsl.Parallel.Fail_fast
              | `Skip -> Mrsl.Parallel.Skip_and_report
            in
            let contained =
              Mrsl.Parallel.run_contained ~config ~strategy ~method_ ?cache
                ~domains:d ~policy ~seed model incomplete
            in
            let result = contained.result in
            Printf.printf
              "inferred %d distinct incomplete tuples (%d sweeps, %.3fs, \
               %s, %d domains)\n\n"
              (List.length result.estimates)
              result.stats.sweeps result.stats.wall_seconds
              (Mrsl.Workload.strategy_name strategy)
              d;
            List.iter (print_estimate schema top) result.estimates;
            List.iter
              (fun (f : Mrsl.Parallel.tuple_fault) ->
                Format.eprintf "fault: tuple %a skipped: %a@."
                  (Relation.Tuple.pp schema) f.tuple Mrsl.Error.pp f.error)
              contained.faults;
            if contained.faults <> [] then
              Printf.eprintf "%d tuples skipped by fault containment\n"
                (List.length contained.faults)
        | None ->
            let sampler = Mrsl.Gibbs.sampler ~method_ ?cache model in
            let result =
              Mrsl.Workload.run ~config ~strategy
                (Prob.Rng.create seed)
                sampler incomplete
            in
            Printf.printf
              "inferred %d distinct incomplete tuples (%d sweeps, %.3fs, \
               %s)\n\n"
              (List.length result.estimates)
              result.stats.sweeps result.stats.wall_seconds
              (Mrsl.Workload.strategy_name strategy);
            List.iter (print_estimate schema top) result.estimates
    end
  in
  let info =
    Cmd.info "infer"
      ~doc:
        "Derive probability distributions for the incomplete tuples of a CSV."
  in
  Cmd.v info
    Term.(
      const run $ input_arg $ support_arg $ max_itemsets_arg $ method_arg
      $ strategy_arg $ samples_arg $ burn_in_arg $ top_arg $ model_arg
      $ lenient_arg $ domains_arg $ on_fault_arg $ retry_arg $ cache_arg
      $ cache_mb_arg $ kernel_arg $ trace_arg $ prometheus_arg $ seed_arg)

(* ---------------- profile ---------------- *)

let profile_cmd =
  let run input =
    let inst = Relation.Csv_io.read_file input in
    print_string (Relation.Profile.render inst)
  in
  let info =
    Cmd.info "profile"
      ~doc:
        "Summarize a CSV: per-attribute cardinality/missingness/entropy and \
         pairwise mutual information."
  in
  Cmd.v info Term.(const run $ input_arg)

(* ---------------- explain ---------------- *)

let explain_cmd =
  let json_arg =
    let doc =
      "Emit machine-readable provenance as JSON ($(i,all) incomplete \
       tuples, not just the first 5): per missing attribute the estimated \
       distribution keyed by value label, the degradation rung the task \
       took (voters | marginal-prior | uniform), and every voter with its \
       normalized share, specificity, and support weight."
    in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  (* The provenance of one (tuple, missing attribute) task, rung
     included — the machine-readable face of Infer_single.explain. *)
  let explain_json schema model method_ tup =
    let module Json = Mrsl.Telemetry.Json in
    let cell a v =
      Relation.Attribute.value_label (Relation.Schema.attribute schema a) v
    in
    let attr_json a =
      let e = Mrsl.Infer_single.explain ~method_ model tup a in
      let dist =
        List.init
          (Prob.Dist.size e.estimate)
          (fun v -> (cell a v, Json.Float (Prob.Dist.prob e.estimate v)))
      in
      let voter_json (rule, share) =
        Json.Obj
          [
            ( "rule",
              Json.String
                (Format.asprintf "%a" (Mrsl.Meta_rule.pp_named schema) rule) );
            ("share", Json.Float share);
            ("specificity", Json.Int (Mrsl.Meta_rule.specificity rule));
            ("weight", Json.Float rule.Mrsl.Meta_rule.weight);
          ]
      in
      Json.Obj
        [
          ("attr", Json.Int a);
          ( "name",
            Json.String
              (Relation.Attribute.name (Relation.Schema.attribute schema a)) );
          ("rung", Json.String (Mrsl.Infer_single.rung_name e.rung));
          ("estimate", Json.Obj dist);
          ("voters", Json.List (List.map voter_json e.contributions));
        ]
    in
    Json.Obj
      [
        ( "tuple",
          Json.List
            (List.mapi
               (fun a -> function
                 | None -> Json.Null
                 | Some v -> Json.String (cell a v))
               (Array.to_list tup)) );
        ( "attributes",
          Json.List (List.map attr_json (Relation.Tuple.missing tup)) );
      ]
  in
  let run input support max_itemsets method_ json =
    let inst = Relation.Csv_io.read_file input in
    let schema = Relation.Instance.schema inst in
    let params = params_of support max_itemsets in
    let model = Mrsl.Model.learn ~params inst in
    let incomplete = Relation.Instance.incomplete_part inst in
    if json then
      let module Json = Mrsl.Telemetry.Json in
      print_endline
        (Json.to_string
           (Json.Obj
              [
                ("schema_version", Json.Int 1);
                ("method", Json.String (Mrsl.Voting.method_name method_));
                ( "tuples",
                  Json.List
                    (Array.to_list
                       (Array.map (explain_json schema model method_)
                          incomplete)) );
              ]))
    else if Array.length incomplete = 0 then
      print_endline "no incomplete tuples to explain"
    else
      Array.iteri
        (fun i tup ->
          if i < 5 then begin
            Format.printf "@.%a:@." (Relation.Tuple.pp schema) tup;
            List.iter
              (fun a ->
                let e = Mrsl.Infer_single.explain ~method_ model tup a in
                Format.printf "  %s ~ %a  [rung: %s]@."
                  (Relation.Attribute.name (Relation.Schema.attribute schema a))
                  Prob.Dist.pp e.estimate
                  (Mrsl.Infer_single.rung_name e.rung);
                List.iter
                  (fun (rule, share) ->
                    Format.printf "    %5.1f%%  %a@." (100. *. share)
                      (Mrsl.Meta_rule.pp_named schema) rule)
                  e.contributions
              )
              (Relation.Tuple.missing tup)
          end)
        incomplete
  in
  let info =
    Cmd.info "explain"
      ~doc:
        "Show which meta-rules voted, with what share, and which \
         degradation rung each task took, for each missing value (first 5 \
         incomplete tuples; $(b,--json) emits all of them \
         machine-readably)."
  in
  Cmd.v info
    Term.(
      const run $ input_arg $ support_arg $ max_itemsets_arg $ method_arg
      $ json_arg)

(* ---------------- diagnose ---------------- *)

let diagnose_cmd =
  let chains_arg =
    let doc = "Number of independent Gibbs chains." in
    Arg.(value & opt int 4 & info [ "chains" ] ~doc)
  in
  let run input support max_itemsets samples burn_in chains seed =
    let inst = Relation.Csv_io.read_file input in
    let schema = Relation.Instance.schema inst in
    let params = params_of support max_itemsets in
    let model = Mrsl.Model.learn ~params inst in
    let sampler = Mrsl.Gibbs.sampler model in
    let rng = Prob.Rng.create seed in
    let incomplete = Relation.Instance.incomplete_part inst in
    if Array.length incomplete = 0 then
      print_endline "no incomplete tuples to diagnose"
    else begin
      Printf.printf
        "Gelman-Rubin diagnostics (%d chains x %d draws, burn-in %d):\n"
        chains samples burn_in;
      Array.iteri
        (fun i tup ->
          if i < 10 then begin
            let report =
              Mrsl.Diagnostics.diagnose ~chains ~draws:samples ~burn_in rng
                sampler tup
            in
            Format.printf "  %a  R-hat %.4f  ESS %.0f  %s@."
              (Relation.Tuple.pp schema) tup report.psrf_max report.ess_min
              (if Mrsl.Diagnostics.converged report then "converged"
               else "NOT converged — increase --samples or --burn-in")
          end)
        incomplete;
      if Array.length incomplete > 10 then
        Printf.printf "  ... (%d more tuples; first 10 shown)\n"
          (Array.length incomplete - 10)
    end
  in
  let info =
    Cmd.info "diagnose"
      ~doc:
        "Check Gibbs convergence (R-hat, effective sample size) for the \
         incomplete tuples of a CSV."
  in
  Cmd.v info
    Term.(
      const run $ input_arg $ support_arg $ max_itemsets_arg $ samples_arg
      $ burn_in_arg $ chains_arg $ seed_arg)

(* ---------------- query ---------------- *)

let query_cmd =
  let lazy_arg =
    let doc =
      "Use the lazy query-targeted view: infer only blocks the query's \
       outcome depends on (Section VIII future work)."
    in
    Arg.(value & flag & info [ "lazy" ] ~doc)
  in
  let where_arg =
    let doc = "Conjunctive condition, e.g. \"age=30,inc=100K\"." in
    Arg.(required & opt (some string) None & info [ "where" ] ~doc)
  in
  let parse_where schema text =
    let atom s =
      match String.split_on_char '=' (String.trim s) with
      | [ attr; value ] -> Probdb.Predicate.eq_label schema attr value
      | _ -> failwith (Printf.sprintf "bad condition %S (want attr=value)" s)
    in
    Probdb.Predicate.conj (List.map atom (String.split_on_char ',' text))
  in
  let run input support max_itemsets samples burn_in where lazy_ seed =
    let inst = Relation.Csv_io.read_file input in
    let schema = Relation.Instance.schema inst in
    let params = params_of support max_itemsets in
    let model = Mrsl.Model.learn ~params inst in
    let pred = parse_where schema where in
    Format.printf "query: %a@." (Probdb.Predicate.pp schema) pred;
    let config = { Mrsl.Gibbs.burn_in; samples } in
    if lazy_ then begin
      let view =
        Probdb.Lazy_pdb.create ~config (Prob.Rng.create seed) model inst
      in
      Printf.printf "expected count:    %.4f\n"
        (Probdb.Lazy_pdb.expected_count view pred);
      Printf.printf "P(at least one):   %.4f\n"
        (Probdb.Lazy_pdb.prob_exists view pred);
      Printf.printf "materialized:      %d of %d incomplete tuples\n"
        (Probdb.Lazy_pdb.materialized_count view)
        (Array.length (Relation.Instance.incomplete_part inst))
    end
    else begin
      let db = Probdb.Pdb.derive ~config (Prob.Rng.create seed) model inst in
      Printf.printf "possible worlds:   %.6g\n" (Probdb.Pdb.possible_worlds db);
      Printf.printf "expected count:    %.4f\n"
        (Probdb.Pdb.expected_count db pred);
      Printf.printf "P(at least one):   %.4f\n"
        (Probdb.Pdb.prob_exists db pred)
    end
  in
  let info =
    Cmd.info "query"
      ~doc:
        "Derive a probabilistic database from a CSV and answer a conjunctive \
         query."
  in
  Cmd.v info
    Term.(
      const run $ input_arg $ support_arg $ max_itemsets_arg $ samples_arg
      $ burn_in_arg $ where_arg $ lazy_arg $ seed_arg)

(* ---------------- quality ---------------- *)

let quality_cmd =
  let mask_arg =
    let doc =
      "Fraction of known cells the shadow evaluator masks, re-infers, and \
       scores against the held-out truth."
    in
    Arg.(value & opt float 0.2 & info [ "mask-fraction" ] ~doc)
  in
  let bins_arg =
    let doc = "Fixed-width reliability bins for the calibration monitor." in
    Arg.(value & opt int 10 & info [ "bins" ] ~doc)
  in
  let drift_arg =
    let doc =
      "Per-attribute Jensen-Shannon divergence above which drift alerts."
    in
    Arg.(value & opt float 0.05 & info [ "drift-threshold" ] ~doc)
  in
  let json_arg =
    let doc =
      "Print the machine-readable quality report (the QUALITY_*.json \
       schema that ci/quality_gate.exe consumes) instead of text."
    in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let out_arg =
    let doc = "Also write the JSON quality report to $(docv)." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc ~docv:"FILE")
  in
  let run input support max_itemsets method_ samples burn_in mask_fraction
      bins drift_threshold json out seed =
    let inst = Relation.Csv_io.read_file input in
    let params = params_of support max_itemsets in
    let model = Mrsl.Model.learn ~params inst in
    let config =
      {
        Mrsl.Quality.default_config with
        mask_fraction;
        bins;
        drift_threshold;
        seed;
      }
    in
    (* A fresh registry scopes the ensemble-health denominators
       (gibbs.chains / gibbs.checked) to this invocation. *)
    let registry = Mrsl.Telemetry.create () in
    let monitor = Mrsl.Quality.create ~config ~telemetry:registry () in
    let complete =
      Array.map Relation.Tuple.of_point (Relation.Instance.complete_part inst)
    in
    let cells = Mrsl.Quality.shadow_eval ~method_ monitor model complete in
    if not json then
      Printf.printf
        "shadow-masked %d cells over %d complete tuples (fraction %.2f, \
         seed %d)\n"
        cells (Array.length complete) mask_fraction seed;
    (* Monitored multi-attribute inference over the incomplete part feeds
       the drift monitor; observation only — estimates are bit-identical
       to an unmonitored run. *)
    let incomplete = Array.to_list (Relation.Instance.incomplete_part inst) in
    if incomplete <> [] then begin
      let sampler = Mrsl.Gibbs.sampler ~method_ model in
      ignore
        (Mrsl.Workload.run
           ~config:{ Mrsl.Gibbs.burn_in; samples }
           ~telemetry:registry ~quality:monitor
           (Prob.Rng.create seed)
           sampler incomplete)
    end;
    Mrsl.Quality.publish ~registry monitor;
    let report () = Mrsl.Quality.to_json ~registry monitor in
    if json then
      print_endline (Mrsl.Telemetry.Json.to_string (report ()))
    else print_string (Mrsl.Quality.render ~registry monitor);
    match out with
    | Some path ->
        Out_channel.with_open_bin path (fun oc ->
            output_string oc (Mrsl.Telemetry.Json.to_string (report ()));
            output_char oc '\n');
        Printf.eprintf "quality report -> %s\n%!" path
    | None -> ()
  in
  let info =
    Cmd.info "quality"
      ~doc:
        "Statistical quality report for a CSV: shadow-masked calibration \
         (Brier, log loss, ECE/MCE, reliability diagram), per-attribute \
         drift, and ensemble health."
  in
  Cmd.v info
    Term.(
      const run $ input_arg $ support_arg $ max_itemsets_arg $ method_arg
      $ samples_arg $ burn_in_arg $ mask_arg $ bins_arg $ drift_arg
      $ json_arg $ out_arg $ seed_arg)

(* ---------------- trace ---------------- *)

let trace_cmd =
  let file_arg =
    let doc =
      "Chrome trace-event JSON file produced by $(b,mrsl infer --trace) or \
       the benchmark harness."
    in
    Arg.(required & pos 0 (some file) None & info [] ~doc ~docv:"TRACE.json")
  in
  let run file =
    let text = In_channel.with_open_bin file In_channel.input_all in
    match Mrsl.Telemetry.Json.of_string text with
    | exception Failure msg ->
        Printf.eprintf "%s: not valid JSON: %s\n" file msg;
        exit 1
    | json -> (
        match Mrsl.Trace.summarize json with
        | summary -> print_string summary
        | exception Invalid_argument msg ->
            Printf.eprintf "%s: not a Chrome trace: %s\n" file msg;
            exit 1)
  in
  let info =
    Cmd.info "trace"
      ~doc:
        "Summarize a recorded trace: top spans by total duration, \
         per-domain utilization, steal count and latency, counter series, \
         dropped events."
  in
  Cmd.v info Term.(const run $ file_arg)

(* ---------------- experiment ---------------- *)

let experiment_cmd =
  let id_arg =
    let doc =
      "Artifact id: table1, fig4, table2, fig5, fig6, fig8, fig9, fig10, \
       fig11, baselines, missingness, ablations."
    in
    Arg.(required & pos 0 (some string) None & info [] ~doc ~docv:"ID")
  in
  let run id seed =
    let rng = Prob.Rng.create seed in
    let render =
      match id with
      | "table1" -> Some (fun () -> Experiments.Table1.render ())
      | "fig4" -> Some (fun () -> Experiments.Fig4.render rng scale)
      | "table2" -> Some (fun () -> Experiments.Table2.render rng scale)
      | "fig5" -> Some (fun () -> Experiments.Fig5.render rng scale)
      | "fig6" -> Some (fun () -> Experiments.Fig6.render rng scale)
      | "fig8" -> Some (fun () -> Experiments.Fig8.render rng scale)
      | "fig9" -> Some (fun () -> Experiments.Fig9.render rng scale)
      | "fig10" -> Some (fun () -> Experiments.Fig10.render rng scale)
      | "fig11" -> Some (fun () -> Experiments.Fig11.render rng scale)
      | "ablations" -> Some (fun () -> Experiments.Ablations.render rng scale)
      | "baselines" ->
          Some (fun () -> Experiments.Baselines_exp.render rng scale)
      | "missingness" ->
          Some (fun () -> Experiments.Missingness_exp.render rng scale)
      | _ -> None
    in
    match render with
    | Some f ->
        Printf.printf "scale=%s\n%s\n" scale.name (f ())
    | None ->
        Printf.eprintf "unknown artifact %S\n" id;
        exit 1
  in
  let info =
    Cmd.info "experiment"
      ~doc:"Regenerate one of the paper's tables or figures (see MRSL_SCALE)."
  in
  Cmd.v info Term.(const run $ id_arg $ seed_arg)

(* ---------------- serve / client ---------------- *)

let endpoint_term =
  let socket_arg =
    let doc = "Serve on (connect to) a Unix-domain socket at $(docv)." in
    Arg.(value & opt (some string) None & info [ "socket" ] ~doc ~docv:"PATH")
  in
  let host_arg =
    let doc = "TCP host for --port." in
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~doc)
  in
  let port_arg =
    let doc = "Serve on (connect to) TCP $(i,host):$(docv)." in
    Arg.(value & opt (some int) None & info [ "port" ] ~doc ~docv:"PORT")
  in
  let make socket host port =
    match (socket, port) with
    | Some path, None -> Ok (Serving.Protocol.Unix_socket path)
    | None, Some port -> Ok (Serving.Protocol.Tcp (host, port))
    | Some _, Some _ -> Error (`Msg "--socket and --port are exclusive")
    | None, None -> Error (`Msg "one of --socket or --port is required")
  in
  Term.(term_result (const make $ socket_arg $ host_arg $ port_arg))

let serve_domains_arg =
  let doc =
    "Worker domains for multi-missing-value inference (default: runtime \
     recommendation)."
  in
  Arg.(value & opt (some int) None & info [ "domains" ] ~doc ~docv:"N")

let serve_cache_mb_arg =
  let doc = "Posterior-cache byte budget, in MiB." in
  Arg.(value & opt positive_int 64 & info [ "cache-mb" ] ~doc ~docv:"MB")

let engine_config_of seed method_ samples burn_in domains cache_mb =
  {
    Serving.Engine.seed;
    method_;
    gibbs = { Mrsl.Gibbs.burn_in; samples };
    domains;
    cache_bytes = cache_mb * 1024 * 1024;
  }

let serve_cmd =
  let model_arg =
    let doc = "Serialized model to serve (see `learn --save-model')." in
    Arg.(
      required & opt (some file) None & info [ "model" ] ~doc ~docv:"FILE")
  in
  let batch_max_arg =
    let doc =
      "Drain at most $(docv) queued requests into one engine batch \
       (batching is what dedups identical concurrent requests)."
    in
    Arg.(value & opt int 64 & info [ "batch-max" ] ~doc ~docv:"N")
  in
  let queue_arg =
    let doc =
      "Admission bound: beyond $(docv) queued requests new ones are \
       answered `serve.overloaded' immediately."
    in
    Arg.(value & opt int 1024 & info [ "queue-capacity" ] ~doc ~docv:"N")
  in
  let max_conns_arg =
    let doc =
      "Live-connection cap: past $(docv) connections an accept is \
       answered `serve.conn_rejected' and closed immediately. \
       Regardless of $(docv), descriptors the select loop cannot \
       represent (>= 1024) are always rejected."
    in
    Arg.(value & opt int 1000 & info [ "max-conns" ] ~doc ~docv:"N")
  in
  let idle_timeout_arg =
    let doc =
      "Kill a connection that completes no frame for $(docv) seconds \
       while it has nothing queued (slow-loris defense); 0 disables."
    in
    Arg.(value & opt float 30. & info [ "idle-timeout" ] ~doc ~docv:"SECONDS")
  in
  let deadline_ms_arg =
    let doc =
      "Default per-request latency budget in milliseconds for requests \
       that carry no `deadline_ms' of their own; a request still queued \
       past its budget is shed with `serve.deadline_exceeded'. 0 \
       disables the default budget."
    in
    Arg.(value & opt int 30_000 & info [ "deadline-ms" ] ~doc ~docv:"MS")
  in
  let out_buf_max_arg =
    let doc =
      "Per-connection response-buffer ceiling in bytes: a peer that \
       stops reading is dropped (`serve.out_buf_killed') once its \
       buffered responses pass $(docv)."
    in
    Arg.(
      value
      & opt int (4 * 1024 * 1024)
      & info [ "out-buf-max" ] ~doc ~docv:"BYTES")
  in
  let out_buf_total_arg =
    let doc =
      "Aggregate response-buffer budget in bytes across all \
       connections: per-connection ceilings compose (max-conns x \
       out-buf-max), so past $(docv) total buffered bytes the \
       connections with the largest buffers are dropped \
       (`serve.out_buf_killed') until the rest fits."
    in
    Arg.(
      value
      & opt int (64 * 1024 * 1024)
      & info [ "out-buf-total" ] ~doc ~docv:"BYTES")
  in
  let access_log_arg =
    let doc =
      "Write a structured JSON access log (one object per logged \
       request: phase breakdown, outcome, conn, epoch) to $(docv); `-' \
       logs to stdout. Sampling is deterministic — see `--log-sample'."
    in
    Arg.(
      value & opt (some string) None & info [ "access-log" ] ~doc ~docv:"FILE")
  in
  let slow_ms_arg =
    let doc =
      "Always log requests slower than $(docv) milliseconds end-to-end, \
       regardless of the sampling rate."
    in
    Arg.(value & opt float 100. & info [ "slow-ms" ] ~doc ~docv:"MS")
  in
  let log_sample_arg =
    let doc =
      "Fraction of ordinary requests to log, decided by a deterministic \
       splitmix draw keyed on (seed, request sequence) — the same seed \
       and workload always sample the same lines. Errors, sheds, and \
       deadline expiries are always logged."
    in
    Arg.(value & opt float 1.0 & info [ "log-sample" ] ~doc ~docv:"FRAC")
  in
  let run model_path endpoint seed method_ samples burn_in domains cache_mb
      use_kernel batch_max queue_capacity max_conns idle_timeout deadline_ms
      out_buf_max out_buf_total trace access_log slow_ms log_sample =
    Mrsl.Kernel.set_enabled use_kernel;
    if Sys.getenv_opt "MRSL_LOG" = None then begin
      Logs.set_reporter (Logs.format_reporter ());
      Logs.set_level (Some Logs.Info)
    end;
    let stop = Atomic.make false in
    let hup = Atomic.make false in
    Sys.set_signal Sys.sighup
      (Sys.Signal_handle (fun _ -> Atomic.set hup true));
    let request_stop _ = Atomic.set stop true in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
    Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
    let config = engine_config_of seed method_ samples burn_in domains cache_mb in
    let engine = Serving.Engine.create ~config ~model_path () in
    let log_oc =
      match access_log with
      | None -> None
      | Some "-" -> Some stdout
      | Some path -> Some (open_out path)
    in
    let server_config =
      {
        (Serving.Server.default_config endpoint) with
        batch_max;
        queue_capacity;
        max_conns;
        idle_timeout;
        out_buf_max;
        out_buf_total;
        default_deadline =
          (if deadline_ms <= 0 then infinity
           else float_of_int deadline_ms /. 1000.);
        access_log = log_oc;
        slow_ms;
        log_sample;
      }
    in
    Fun.protect
      ~finally:(fun () ->
        match log_oc with
        | Some oc when oc != stdout -> close_out_noerr oc
        | _ -> ())
      (fun () ->
        with_trace trace (fun () ->
            Serving.Server.run ~stop ~hup server_config engine))
  in
  let info =
    Cmd.info "serve"
      ~doc:
        "Serve a model over a Unix or TCP socket: line-delimited JSON \
         requests (infer, ping, stats, reload, shutdown), batched \
         inference with request dedup, bounded admission, hot model swap \
         on SIGHUP or `reload', and a live Prometheus GET /metrics \
         endpoint on the same socket."
  in
  Cmd.v info
    Term.(
      const run $ model_arg $ endpoint_term $ seed_arg $ method_arg
      $ samples_arg $ burn_in_arg $ serve_domains_arg $ serve_cache_mb_arg
      $ kernel_arg $ batch_max_arg $ queue_arg $ max_conns_arg $ idle_timeout_arg
      $ deadline_ms_arg $ out_buf_max_arg $ out_buf_total_arg $ trace_arg
      $ access_log_arg $ slow_ms_arg $ log_sample_arg)

let client_cmd =
  let module Json = Mrsl.Telemetry.Json in
  let with_client endpoint f =
    let c =
      Serving.Client.connect_retry ~attempts:100 ~delay:0.05 ~timeout:30.
        endpoint
    in
    Fun.protect ~finally:(fun () -> Serving.Client.close c) (fun () -> f c)
  in
  let print_response line =
    print_endline line;
    match Json.of_string line with
    | Json.Obj fields ->
        if List.assoc_opt "ok" fields = Some (Json.Bool false) then exit 1
    | _ | (exception Json.Parse_error _) -> exit 1
  in
  let simple name ~doc op =
    let run endpoint =
      with_client endpoint (fun c ->
          print_response (Serving.Client.rpc c (Serving.Protocol.req op)))
    in
    Cmd.v (Cmd.info name ~doc) Term.(const run $ endpoint_term)
  in
  let reload_cmd =
    let path_arg =
      let doc = "Model file to load (default: the server's current path)." in
      Arg.(value & opt (some string) None & info [ "path" ] ~doc ~docv:"FILE")
    in
    let run endpoint path =
      with_client endpoint (fun c ->
          print_response
            (Serving.Client.rpc c (Serving.Protocol.req (Reload path))))
    in
    Cmd.v
      (Cmd.info "reload" ~doc:"Hot-swap the served model.")
      Term.(const run $ endpoint_term $ path_arg)
  in
  let infer_cmd =
    let tuple_arg =
      let doc =
        "Comma-separated value labels in schema order; `?' (or empty) \
         marks a missing value, e.g. \"30,?,NY\"."
      in
      Arg.(
        required & opt (some string) None & info [ "tuple" ] ~doc ~docv:"T")
    in
    let deadline_arg =
      let doc =
        "Attach a `deadline_ms' latency budget of $(docv) milliseconds \
         to the request; the server sheds it with \
         `serve.deadline_exceeded' if still queued past the budget."
      in
      Arg.(
        value
        & opt (some int) None
        & info [ "deadline-ms" ] ~doc ~docv:"MS")
    in
    let run endpoint tuple deadline_ms =
      let labels =
        String.split_on_char ',' tuple
        |> List.map (fun s ->
               let s = String.trim s in
               if s = "" || s = "?" then None else Some s)
        |> Array.of_list
      in
      with_client endpoint (fun c ->
          print_response
            (Serving.Client.rpc c
               (Serving.Protocol.req ?deadline_ms (Infer labels))))
    in
    Cmd.v
      (Cmd.info "infer"
         ~doc:"Request the posterior of one incomplete tuple.")
      Term.(const run $ endpoint_term $ tuple_arg $ deadline_arg)
  in
  let raw_cmd =
    let line_arg =
      let doc = "Raw line to send (need not be valid JSON)." in
      Arg.(required & pos 0 (some string) None & info [] ~doc ~docv:"LINE")
    in
    let run endpoint line =
      with_client endpoint (fun c ->
          Serving.Client.send_raw c line;
          print_endline (Serving.Client.recv c))
    in
    Cmd.v
      (Cmd.info "raw"
         ~doc:
           "Send one raw protocol line and print the response — for \
            driving the server with malformed input.")
      Term.(const run $ endpoint_term $ line_arg)
  in
  let metrics_cmd =
    let run endpoint =
      print_string (Serving.Client.scrape_metrics ~timeout:30. endpoint)
    in
    Cmd.v
      (Cmd.info "metrics"
         ~doc:"Scrape GET /metrics and print the Prometheus exposition.")
      Term.(const run $ endpoint_term)
  in
  let profile_cmd =
    let run endpoint =
      with_client endpoint (fun c ->
          let obj = Serving.Client.stats_json c in
          let phases =
            match Json.member "phases" obj with
            | Some (Json.Obj ps) -> ps
            | _ ->
                failwith
                  "stats response has no phases object — is the daemon \
                   older than the observability pass?"
          in
          let num key fields =
            match List.assoc_opt key fields with
            | Some (Json.Float f) -> Some f
            | Some (Json.Int i) -> Some (float_of_int i)
            | _ -> None
          in
          Printf.printf "%-12s %8s %12s %12s %12s\n" "phase" "count"
            "p50 (ms)" "p99 (ms)" "max (ms)";
          List.iter
            (fun (name, v) ->
              match v with
              | Json.Obj fields ->
                  let count =
                    match num "count" fields with
                    | Some c -> int_of_float c
                    | None -> 0
                  in
                  let cell key =
                    match num key fields with
                    | Some f when count > 0 -> Printf.sprintf "%.3f" f
                    | _ -> "-"
                  in
                  Printf.printf "%-12s %8d %12s %12s %12s\n" name count
                    (cell "p50_ms") (cell "p99_ms") (cell "max_ms")
              | _ -> ())
            phases;
          (* Resources block (daemons from the resource-observability
             pass onward): GC/heap footprint, per-domain utilization and
             the cache accounted-vs-reachable cross-check. *)
          match Json.member "resources" obj with
          | Some (Json.Obj res) ->
              let fnum path =
                let rec walk obj = function
                  | [] -> None
                  | [ k ] -> num k obj
                  | k :: rest -> (
                      match List.assoc_opt k obj with
                      | Some (Json.Obj o) -> walk o rest
                      | _ -> None)
                in
                walk res path
              in
              let mb = function
                | Some b -> Printf.sprintf "%.1f MiB" (b /. (1024. *. 1024.))
                | None -> "-"
              in
              let count = function
                | Some c -> Printf.sprintf "%.0f" c
                | None -> "-"
              in
              Printf.printf "\nresources:\n";
              Printf.printf "  heap %s (peak %s)  minor/major/compact %s/%s/%s\n"
                (mb (fnum [ "mem"; "heap_bytes" ]))
                (mb (fnum [ "mem"; "top_heap_bytes" ]))
                (count (fnum [ "gc"; "minor_collections" ]))
                (count (fnum [ "gc"; "major_collections" ]))
                (count (fnum [ "gc"; "compactions" ]));
              (match
                 ( fnum [ "cache"; "accounted_bytes" ],
                   fnum [ "cache"; "reachable_bytes" ] )
               with
              | Some acc, Some reach ->
                  Printf.printf
                    "  cache accounted %s vs reachable %s (x%.2f)\n"
                    (mb (Some acc)) (mb (Some reach))
                    (if reach > 0. then acc /. reach else 1.)
              | _ -> ());
              (match List.assoc_opt "domains" res with
              | Some (Json.List ds) when ds <> [] ->
                  Printf.printf "  domain utilization:";
                  List.iter
                    (fun d ->
                      match d with
                      | Json.Obj fields -> (
                          match
                            (num "domain" fields, num "utilization" fields)
                          with
                          | Some id, Some u ->
                              Printf.printf " %d=%.2f" (int_of_float id) u
                          | _ -> ())
                      | _ -> ())
                    ds;
                  print_newline ()
              | _ -> ())
          | _ -> ())
    in
    Cmd.v
      (Cmd.info "profile"
         ~doc:
           "Show the daemon's live per-phase latency breakdown \
            (queue-wait / compute / flush-wait / total p50, p99, and \
            max) and resource footprint (GC, heap, domain utilization, \
            cache bytes) from its `stats' op.")
      Term.(const run $ endpoint_term)
  in
  let verify_cmd =
    let window_arg =
      let doc =
        "Pipeline at most $(docv) outstanding requests (keeps a large \
         verification under the server's admission bound while still \
         exercising batching)."
      in
      Arg.(value & opt int 64 & info [ "window" ] ~doc ~docv:"N")
    in
    let model_arg =
      let doc =
        "The model file the server is serving — loaded locally as the \
         reference."
      in
      Arg.(
        required & opt (some file) None & info [ "model" ] ~doc ~docv:"FILE")
    in
    let run endpoint model_path input seed method_ samples burn_in domains
        cache_mb use_kernel window =
      (* Controls only the LOCAL reference engine; the daemon's kernel
         setting is its own. `--no-kernel' makes the reference run the
         interpreted oracle, so verify cross-checks a kernel-enabled
         daemon against interpreted inference bit-for-bit. *)
      Mrsl.Kernel.set_enabled use_kernel;
      let inst = Relation.Csv_io.read_file input in
      let config =
        engine_config_of seed method_ samples burn_in domains cache_mb
      in
      (* A private registry keeps the reference engine's serve.* metrics
         out of the process-global registry. *)
      let local =
        Serving.Engine.create
          ~telemetry:(Mrsl.Telemetry.create ())
          ~config ~model_path ()
      in
      let schema = Mrsl.Model.schema (Serving.Engine.model local) in
      if not (Relation.Schema.equal schema (Relation.Instance.schema inst))
      then failwith "model schema does not match the input CSV";
      let to_labels tup =
        Array.mapi
          (fun a cell ->
            Option.map
              (fun v ->
                Relation.Attribute.value_label
                  (Relation.Schema.attribute schema a)
                  v)
              cell)
          tup
      in
      let incomplete =
        Array.to_list (Relation.Instance.incomplete_part inst)
      in
      if incomplete = [] then failwith "input has no incomplete tuples";
      let requests =
        List.mapi
          (fun i tup ->
            Serving.Protocol.req ~id:(Json.Int i) (Infer (to_labels tup)))
          incomplete
      in
      (* Strip the epoch before comparing: model epochs are
         process-unique, so the server's differs from the reference
         engine's by construction. Everything else — attrs, posteriors
         (round-trip float printing), mode, samples_used, id — must be
         bit-identical. *)
      let payload line =
        match Json.of_string line with
        | Json.Obj fields ->
            Json.to_string ~pretty:false
              (Json.Obj (List.filter (fun (k, _) -> k <> "epoch") fields))
        | j -> Json.to_string ~pretty:false j
      in
      let mismatches = ref 0 in
      let compared = ref 0 in
      with_client endpoint (fun c ->
          let rec go pending =
            match pending with
            | [] -> ()
            | _ ->
                let burst, rest =
                  let rec split n = function
                    | x :: tl when n > 0 ->
                        let a, b = split (n - 1) tl in
                        (x :: a, b)
                    | l -> ([], l)
                  in
                  split (max 1 window) pending
                in
                List.iter (Serving.Client.send c) burst;
                List.iter
                  (fun req ->
                    let served = Serving.Client.recv c in
                    let reference =
                      Serving.Engine.handle_request local req
                    in
                    incr compared;
                    if payload served <> payload (String.trim reference)
                    then begin
                      incr mismatches;
                      Printf.eprintf "MISMATCH\n  served:    %s\n  local:     %s\n"
                        served (String.trim reference)
                    end)
                  burst;
                go rest
          in
          go requests);
      Printf.printf
        "verified %d served posteriors bit-identical to local inference\n"
        !compared;
      if !mismatches > 0 then begin
        Printf.eprintf "%d mismatches\n" !mismatches;
        exit 1
      end
    in
    Cmd.v
      (Cmd.info "verify"
         ~doc:
           "Query the server for every incomplete tuple of a CSV and \
            check each served posterior is bit-identical to local \
            inference through the same library entry points.")
      Term.(
        const run $ endpoint_term $ model_arg $ input_arg $ seed_arg
        $ method_arg $ samples_arg $ burn_in_arg $ serve_domains_arg
        $ serve_cache_mb_arg $ kernel_arg $ window_arg)
  in
  let info =
    Cmd.info "client"
      ~doc:"Talk to a running $(b,mrsl serve) daemon (scripting and CI)."
  in
  Cmd.group info
    [
      simple "ping" ~doc:"Liveness check (reports the model epoch)."
        Serving.Protocol.Ping;
      simple "stats" ~doc:"Request counters and cache statistics."
        Serving.Protocol.Stats;
      simple "shutdown" ~doc:"Ask the server to shut down gracefully."
        Serving.Protocol.Shutdown;
      reload_cmd; infer_cmd; raw_cmd; metrics_cmd; profile_cmd; verify_cmd;
    ]

(* ---------------- resources ---------------- *)

let resources_cmd =
  let domains_arg =
    let doc =
      "Run the monitored inference on this many domains (per-domain \
       utilization needs at least one pooled worker)."
    in
    Arg.(value & opt positive_int 2 & info [ "domains" ] ~doc ~docv:"N")
  in
  let cache_mb_arg =
    let doc = "Posterior-cache byte budget, in MiB." in
    Arg.(value & opt positive_int 64 & info [ "cache-mb" ] ~doc ~docv:"MB")
  in
  let json_arg =
    let doc = "Emit the machine-readable JSON report instead of text." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let run input support max_itemsets method_ samples burn_in domains cache_mb
      use_kernel json trace seed =
    let module Json = Mrsl.Telemetry.Json in
    Mrsl.Kernel.set_enabled use_kernel;
    with_trace trace @@ fun () ->
    let inst = Relation.Csv_io.read_file input in
    let params = params_of support max_itemsets in
    let model = Mrsl.Model.learn ~params inst in
    let incomplete = Array.to_list (Relation.Instance.incomplete_part inst) in
    if incomplete = [] then begin
      Printf.eprintf
        "no incomplete tuples — the resource report needs an inference \
         workload\n";
      exit 1
    end;
    let cache =
      Mrsl.Posterior_cache.create ~max_bytes:(cache_mb * 1024 * 1024) ()
    in
    let config = { Mrsl.Gibbs.burn_in; samples } in
    (* Monitor exactly the inference run (learning stays outside), so the
       registry deltas below read as "what this workload cost". *)
    let report =
      Mrsl.Resource.monitored @@ fun () ->
      let _ =
        Mrsl.Parallel.run ~config ~method_ ~cache ~domains ~seed model
          incomplete
      in
      Mrsl.Resource.sample_current ();
      Mrsl.Resource.report ~cache ()
    in
    if json then print_endline (Json.to_string report)
    else begin
      let reg = Mrsl.Telemetry.global in
      let c name = Mrsl.Telemetry.counter reg name in
      let mb b = Printf.sprintf "%.1f MiB" (float_of_int b /. 1048576.) in
      let kb f =
        if f >= 1048576. then Printf.sprintf "%.2f MiB" (f /. 1048576.)
        else Printf.sprintf "%.1f KiB" (f /. 1024.)
      in
      Printf.printf "resource report: %d tuples, %d domains, %d samples\n"
        (List.length incomplete) domains samples;
      Printf.printf "gc:          minor %d  major %d  compactions %d\n"
        (c "gc.minor_collections") (c "gc.major_collections")
        (c "gc.compactions");
      let gauge name =
        match Mrsl.Telemetry.gauge_value reg name with
        | Some last -> int_of_float last
        | None -> 0
      in
      Printf.printf "heap:        %s (peak %s)\n"
        (mb (gauge "mem.heap_bytes"))
        (mb (gauge "mem.top_heap_bytes"));
      Printf.printf "allocated:   %s (promoted %s)\n"
        (mb (c "mem.allocated_bytes"))
        (mb (c "mem.promoted_bytes"));
      List.iter
        (fun (label, name) ->
          match Mrsl.Telemetry.histogram reg name with
          | Some (s : Mrsl.Telemetry.summary) when s.count > 0 ->
              Printf.printf "%s n=%d  p50 %s  p99 %s  max %s\n" label s.count
                (kb s.p50) (kb s.p99) (kb s.max)
          | _ -> ())
        [
          ("alloc/infer:", "mem.alloc_per_infer_bytes");
          ("alloc/chain:", "mem.alloc_per_chain_bytes");
        ];
      (match Mrsl.Resource.utilization () with
      | [] -> ()
      | util ->
          Printf.printf "utilization:";
          List.iter (fun (d, u) -> Printf.printf " %d=%.2f" d u) util;
          print_newline ());
      let st = Mrsl.Posterior_cache.stats cache in
      let reach = Mrsl.Posterior_cache.reachable_bytes cache in
      Printf.printf "cache:       accounted %s vs reachable %s (x%.2f)\n"
        (mb st.bytes) (mb reach)
        (if reach > 0 then float_of_int st.bytes /. float_of_int reach
         else 1.)
    end
  in
  let info =
    Cmd.info "resources"
      ~doc:
        "Run a resource-monitored inference over a CSV's incomplete \
         tuples and report GC counts, heap footprint, allocation per \
         task, per-domain utilization, and the posterior cache's \
         accounted-vs-reachable bytes — the measured baseline for \
         ROADMAP item 2's allocation-free kernels."
  in
  Cmd.v info
    Term.(
      const run $ input_arg $ support_arg $ max_itemsets_arg $ method_arg
      $ samples_arg $ burn_in_arg $ domains_arg $ cache_mb_arg $ kernel_arg
      $ json_arg $ trace_arg $ seed_arg)

let setup_logging () =
  match Sys.getenv_opt "MRSL_LOG" with
  | None -> ()
  | Some lvl ->
      Logs.set_reporter (Logs.format_reporter ());
      Logs.set_level
        (match String.lowercase_ascii lvl with
        | "debug" -> Some Logs.Debug
        | "info" -> Some Logs.Info
        | "warning" -> Some Logs.Warning
        | _ -> Some Logs.Info)

let () =
  setup_logging ();
  if Mrsl.Fault_inject.install_from_env () then
    Printf.eprintf "fault injection active: %s\n%!"
      (Mrsl.Fault_inject.describe (Mrsl.Fault_inject.current ()));
  let doc =
    "MRSL: deriving probabilistic databases with inference ensembles \
     (reproduction of Stoyanovich et al., ICDE 2011)"
  in
  let info = Cmd.info "mrsl" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            generate_cmd; profile_cmd; learn_cmd; infer_cmd; explain_cmd;
            diagnose_cmd; quality_cmd; query_cmd; trace_cmd; experiment_cmd;
            resources_cmd; serve_cmd; client_cmd;
          ]))
